"""Unit tests for shifter, multipliers, comparators and ALU generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import rich_asic_library
from repro.datapath import (
    alu,
    array_multiplier,
    barrel_shifter,
    equality_comparator,
    magnitude_comparator,
    parity_tree,
    simulate_alu,
    simulate_comparator,
    simulate_multiplier,
    simulate_shifter,
    wallace_multiplier,
)
from repro.netlist import logic_depth
from repro.synth import expand_macro, get_macro, list_macros, simulate_combinational
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)


class TestShifter:
    def test_exhaustive_8bit(self):
        module = barrel_shifter(8, RICH)
        module.assert_well_formed()
        for value in (0, 1, 0x5A, 0xFF):
            for shift in range(8):
                got = simulate_shifter(module, RICH, 8, value, shift)
                assert got == (value << shift) & 0xFF, (value, shift)

    def test_non_power_of_two_width(self):
        module = barrel_shifter(6, RICH)
        for shift in range(6):
            got = simulate_shifter(module, RICH, 6, 0b101011, shift)
            assert got == (0b101011 << shift) & 0b111111

    def test_depth_logarithmic(self):
        d8 = logic_depth(barrel_shifter(8, RICH))
        d32 = logic_depth(barrel_shifter(32, RICH))
        assert d32 <= d8 + 3


class TestMultipliers:
    @pytest.mark.parametrize("gen", [array_multiplier, wallace_multiplier])
    def test_exhaustive_4bit(self, gen):
        module = gen(4, RICH)
        module.assert_well_formed()
        for a in range(16):
            for b in range(16):
                assert simulate_multiplier(module, RICH, 4, a, b) == a * b

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    def test_wallace_6bit_random(self, a, b):
        assert simulate_multiplier(_WM6, RICH, 6, a, b) == a * b

    def test_wallace_shallower_than_array(self):
        array = array_multiplier(8, RICH)
        wallace = wallace_multiplier(8, RICH)
        assert logic_depth(wallace) < logic_depth(array)


_WM6 = wallace_multiplier(6, RICH)


class TestComparators:
    def test_equality(self):
        module = equality_comparator(6, RICH)
        assert simulate_comparator(module, RICH, 6, 37, 37, "eq") is True
        assert simulate_comparator(module, RICH, 6, 37, 36, "eq") is False

    def test_magnitude_exhaustive_4bit(self):
        module = magnitude_comparator(4, RICH)
        for a in range(16):
            for b in range(16):
                assert simulate_comparator(module, RICH, 4, a, b, "gt") == (a > b)

    def test_parity(self):
        module = parity_tree(8, RICH)
        for value in (0, 1, 3, 0xFF, 0xA5):
            vec = {f"d{i}": bool((value >> i) & 1) for i in range(8)}
            out = simulate_combinational(module, RICH, vec)
            assert out["p"] == (bin(value).count("1") % 2 == 1)


class TestAlu:
    @pytest.mark.parametrize("fast", [True, False])
    def test_operations_4bit(self, fast):
        module = alu(4, RICH, fast_adder=fast)
        module.assert_well_formed()
        for a in range(0, 16, 3):
            for b in range(0, 16, 5):
                r, cout, zero = simulate_alu(module, RICH, 4, a, b, op=0)
                assert r == (a + b) % 16
                assert cout == (a + b) // 16
                r, _, _ = simulate_alu(module, RICH, 4, a, b, op=0, sub=1)
                assert r == (a - b) % 16
                r, _, _ = simulate_alu(module, RICH, 4, a, b, op=1)
                assert r == (a & b)
                r, _, _ = simulate_alu(module, RICH, 4, a, b, op=2)
                assert r == (a | b)
                r, _, zero = simulate_alu(module, RICH, 4, a, b, op=3)
                assert r == (a ^ b)
                assert zero == (r == 0)

    def test_fast_adder_cuts_depth(self):
        slow = alu(16, RICH, fast_adder=False)
        fast = alu(16, RICH, fast_adder=True)
        assert logic_depth(fast) < logic_depth(slow)


class TestMacroRegistry:
    def test_all_macros_registered(self):
        names = {spec.name for spec in list_macros()}
        assert {
            "adder_ripple", "adder_cla", "adder_carry_select",
            "adder_kogge_stone", "barrel_shifter", "multiplier_array",
            "multiplier_wallace", "comparator_eq", "comparator_gt",
            "parity_tree", "alu",
        } <= names

    def test_expand_macro(self):
        module = expand_macro("adder_kogge_stone", 8, RICH)
        module.assert_well_formed()
        from repro.datapath import simulate_adder

        assert simulate_adder(module, RICH, 8, 200, 55, 1) == (0, 1)

    def test_category_filter(self):
        adders = {m.name for m in list_macros(category="adder")}
        assert {
            "adder_ripple", "adder_cla", "adder_carry_select",
            "adder_kogge_stone", "incrementer",
        } == adders

    def test_unknown_macro(self):
        from repro.synth import SynthesisError

        with pytest.raises(SynthesisError, match="registered"):
            get_macro("nonexistent_macro")
