"""Clock indirection for the observability layer.

Spans and rate metrics need a monotonic time source, but tests need the
exported artifacts to be byte-for-byte deterministic.  Everything in
:mod:`repro.obs` therefore reads time through a swappable callable
instead of touching :func:`time.perf_counter` directly, and
:class:`TickClock` provides a fake that advances by a fixed step per
call.
"""

from __future__ import annotations

import time
from typing import Callable

#: Signature of a time source: returns seconds on a monotonic scale.
ClockFn = Callable[[], float]

#: The production clock.
MONOTONIC: ClockFn = time.perf_counter


class TickClock:
    """Deterministic fake clock advancing ``tick`` seconds per call.

    Useful for exporter tests: every span started/ended against a
    ``TickClock`` gets reproducible timestamps, so JSON dumps can be
    compared exactly.

    Attributes:
        now: the value the *next* call will return.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without consuming a tick."""
        self.now += seconds
