"""Tests for the CPU execute-stage generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import rich_asic_library
from repro.datapath.cpu import (
    cpu_execute_stage,
    reference_execute,
    simulate_execute_stage,
)
from repro.netlist import logic_depth
from repro.synth import SynthesisError
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
BITS = 6
_STAGE = cpu_execute_stage(BITS, RICH)


class TestExecuteStage:
    def test_well_formed(self):
        _STAGE.assert_well_formed()
        assert len(_STAGE.outputs()) == 2 * BITS + 3

    @pytest.mark.parametrize("op,sub", [(0, 0), (0, 1), (1, 0), (2, 0),
                                        (3, 0)])
    def test_alu_ops(self, op, sub):
        for ra, rb in ((5, 9), (63, 1), (0, 0), (21, 42)):
            got = simulate_execute_stage(
                _STAGE, RICH, BITS, ra, rb, op=op, sub=sub
            )
            want = reference_execute(
                BITS, ra, rb, 0, False, False, op, sub, 0, False, 0, False
            )
            assert got == want, (ra, rb, op, sub)

    def test_bypass_network(self):
        got = simulate_execute_stage(
            _STAGE, RICH, BITS, ra=1, rb=2, fwd=30, bypa=True, op=0
        )
        assert got["res"] == (30 + 2) % (1 << BITS)
        got = simulate_execute_stage(
            _STAGE, RICH, BITS, ra=1, rb=2, fwd=30, bypb=True, op=0
        )
        assert got["res"] == (1 + 30) % (1 << BITS)

    def test_shifted_operand(self):
        got = simulate_execute_stage(
            _STAGE, RICH, BITS, ra=0, rb=3, shift=2, use_shift=True, op=2
        )
        assert got["res"] == (3 << 2) & ((1 << BITS) - 1)

    def test_branch_resolution(self):
        taken = simulate_execute_stage(
            _STAGE, RICH, BITS, ra=7, rb=7, op=0, sub=1, is_branch=True
        )
        assert taken["zero"] and taken["taken"]
        not_taken = simulate_execute_stage(
            _STAGE, RICH, BITS, ra=7, rb=6, op=0, sub=1, is_branch=True
        )
        assert not not_taken["taken"]

    def test_next_pc(self):
        for pc in (0, 13, (1 << BITS) - 1):
            got = simulate_execute_stage(_STAGE, RICH, BITS, 0, 0, pc=pc)
            assert got["npc"] == (pc + 1) % (1 << BITS)

    def test_fast_adder_shallower(self):
        slow = cpu_execute_stage(8, RICH, fast_adder=False)
        fast = cpu_execute_stage(8, RICH, fast_adder=True)
        assert logic_depth(fast) < logic_depth(slow)

    def test_width_validation(self):
        with pytest.raises(SynthesisError):
            cpu_execute_stage(2, RICH)


@settings(max_examples=25, deadline=None)
@given(
    ra=st.integers(0, 63), rb=st.integers(0, 63), fwd=st.integers(0, 63),
    bypa=st.booleans(), bypb=st.booleans(),
    op=st.integers(0, 3), sub=st.integers(0, 1),
    shift=st.integers(0, 7), use_shift=st.booleans(),
    pc=st.integers(0, 63), is_branch=st.booleans(),
)
def test_execute_stage_matches_reference(
    ra, rb, fwd, bypa, bypb, op, sub, shift, use_shift, pc, is_branch
):
    got = simulate_execute_stage(
        _STAGE, RICH, BITS, ra, rb, fwd=fwd, bypa=bypa, bypb=bypb,
        op=op, sub=sub, shift=shift, use_shift=use_shift, pc=pc,
        is_branch=is_branch,
    )
    want = reference_execute(
        BITS, ra, rb, fwd, bypa, bypb, op, sub, shift, use_shift, pc,
        is_branch,
    )
    assert got == want
