"""Tests for the backend registry and the structured-ASIC flow.

The contracts under test: the ``BACKENDS`` registry knows the three
built-in styles and resolves them by name and by options class; every
registered backend runs end-to-end through the shared engine (ledger
record, checkpoint/resume, array-STA parity included); and the
structured backend's result sits between asic and custom on cycle
time, with the prefab fabric priced into its area.
"""

import dataclasses

import pytest

from repro.flows import (
    BACKENDS,
    AsicFlowOptions,
    Backend,
    CustomFlowOptions,
    FlowError,
    FlowOptions,
    StructuredFlowOptions,
    backend_for_options,
    backend_names,
    get_backend,
    register_backend,
    run_backend_flow,
    run_flow_sweep,
    run_structured_flow,
)
from repro.flows.registry import registered_stage_names
from repro.obs import ledger as run_ledger

SMALL = {"bits": 4, "sizing_moves": 2}


def _comparable(result):
    payload = result.to_dict()
    payload.pop("stages")  # wall times differ run to run
    return payload


class TestRegistry:
    def test_builtin_names_in_order(self):
        assert backend_names()[:3] == ["asic", "custom", "structured"]

    def test_get_backend_resolves_builtins(self):
        for name in ("asic", "custom", "structured"):
            backend = get_backend(name)
            assert backend.name == name
            assert backend.graph.flow == name
            assert backend.default_workload in (
                backend.options_cls().workload, "alu_macro"
            )

    def test_get_backend_unknown_style(self):
        with pytest.raises(FlowError, match="unknown implementation"):
            get_backend("fpga")

    def test_register_rejects_graph_name_mismatch(self):
        asic = get_backend("asic")
        bad = dataclasses.replace(asic, name="renamed")
        with pytest.raises(FlowError, match="must match"):
            register_backend(bad)

    def test_register_rejects_conflicting_duplicate(self):
        asic = get_backend("asic")
        clone = dataclasses.replace(asic)
        with pytest.raises(FlowError, match="already registered"):
            register_backend(clone)

    def test_register_same_object_is_idempotent(self):
        asic = get_backend("asic")
        assert register_backend(asic) is asic
        assert BACKENDS["asic"] is asic

    def test_stage_names_union_preserves_order(self):
        names = registered_stage_names()
        assert names == ("map", "place", "cts", "size", "sta", "quote")


class TestBackendForOptions:
    def test_each_options_class_resolves(self):
        assert backend_for_options(AsicFlowOptions()).name == "asic"
        assert backend_for_options(CustomFlowOptions()).name == "custom"
        assert (backend_for_options(StructuredFlowOptions()).name
                == "structured")

    def test_plain_flow_options_fall_back_to_asic(self):
        assert backend_for_options(FlowOptions()).name == "asic"

    def test_subclass_inherits_backend_via_mro(self):
        @dataclasses.dataclass(frozen=True)
        class TunedStructured(StructuredFlowOptions):
            pass

        assert (backend_for_options(TunedStructured()).name
                == "structured")


class TestEveryBackendEndToEnd:
    @pytest.mark.parametrize("name", ["asic", "custom", "structured"])
    def test_runs_on_alu_and_records_to_ledger(self, name):
        backend = get_backend(name)
        run_ledger.set_enabled(True)
        result = run_backend_flow(
            name, backend.options_cls(workload="alu", **SMALL)
        )
        assert result.style == name
        assert result.quoted_frequency_mhz > 0
        records = run_ledger.get_ledger().records(kind="flow")
        assert len(records) == 1
        assert records[0].label.startswith(f"{name}.")

    @pytest.mark.parametrize("name", ["asic", "custom", "structured"])
    def test_checkpoint_resume_bit_identical(self, name, tmp_path):
        backend = get_backend(name)
        options = backend.options_cls(workload="alu", **SMALL)
        clean = run_backend_flow(name, options)
        ck = str(tmp_path / f"{name}.ck")
        with pytest.raises(FlowError):
            run_backend_flow(
                name,
                dataclasses.replace(options, fault="size"),
                checkpoint=ck,
            )
        resumed = run_backend_flow(name, options, checkpoint=ck,
                                   resume=True)
        assert _comparable(resumed) == _comparable(clean)
        statuses = {r.name: r.status for r in resumed.stage_records}
        assert statuses["map"] == "resumed"
        assert statuses["place"] == "resumed"

    def test_mixed_style_sweep_resolves_each_point(self):
        points = [
            AsicFlowOptions(**SMALL),
            StructuredFlowOptions(**SMALL),
            CustomFlowOptions(**SMALL),
        ]
        results = run_flow_sweep(points, workers=1)
        assert [r.style for r in results] == [
            "asic", "structured", "custom",
        ]


class TestStructuredFlow:
    def test_sits_between_asic_and_custom_on_cycle_time(self):
        asic = run_backend_flow("asic", AsicFlowOptions(**SMALL))
        structured = run_backend_flow(
            "structured", StructuredFlowOptions(**SMALL)
        )
        custom = run_backend_flow("custom", CustomFlowOptions(**SMALL))
        assert (custom.min_period_ps
                < structured.min_period_ps
                < asic.min_period_ps)

    def test_area_is_the_master_not_the_cells(self):
        structured = run_structured_flow(StructuredFlowOptions(**SMALL))
        asic = run_backend_flow("asic", AsicFlowOptions(**SMALL))
        # Prefab penalty: the structured die is the master bought, far
        # larger than the cells used (same netlist as the ASIC point).
        assert structured.area_um2 > 10 * asic.area_um2
        assert 0.0 < structured.notes["fabric_utilization"] < 1.0

    def test_skew_between_asic_and_custom_budgets(self):
        from repro.sta.clocking import (
            ASIC_SKEW_FRACTION,
            CUSTOM_SKEW_FRACTION,
        )

        result = run_structured_flow(StructuredFlowOptions(**SMALL))
        skew = result.notes["clock_tree_skew_ps"]
        assert skew > 0
        # The flow clamps the applied skew fraction into
        # [structured, asic]; the note records the raw tree skew.
        assert CUSTOM_SKEW_FRACTION < ASIC_SKEW_FRACTION

    def test_check_array_parity_holds(self):
        result = run_structured_flow(
            StructuredFlowOptions(check_array=True, **SMALL)
        )
        assert result.quoted_frequency_mhz > 0

    def test_lower_target_utilization_buys_bigger_master(self):
        tight = run_structured_flow(
            StructuredFlowOptions(fabric_utilization=0.9, **SMALL)
        )
        slack = run_structured_flow(
            StructuredFlowOptions(fabric_utilization=0.2, **SMALL)
        )
        assert slack.area_um2 > tight.area_um2

    def test_registered_backend_is_the_module_singleton(self):
        from repro.flows.structured import STRUCTURED_BACKEND

        assert get_backend("structured") is STRUCTURED_BACKEND
        assert isinstance(STRUCTURED_BACKEND, Backend)
