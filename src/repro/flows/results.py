"""Flow result records shared by the ASIC and custom flows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robust.validate import Diagnostic
from repro.tech.process import ProcessTechnology


class FlowError(ValueError):
    """Raised when a flow cannot complete.

    Attributes:
        stage: the flow stage that failed (``"map"``, ``"place"``,
            ``"cts"``, ``"size"``, ``"sta"``, ``"quote"``), or None when
            the failure is not tied to one stage.  Stage failures chain
            the underlying exception (``raise ... from exc``), so
            tracebacks name both the stage and the root cause.
    """

    def __init__(self, message: str, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage


@dataclass(frozen=True)
class StageRecord:
    """Execution record of one engine stage within a flow run.

    Attributes:
        name: stage name.
        status: ``"ok"`` (ran), ``"cached"`` (replayed from the
            fingerprint cache), ``"resumed"`` (restored from a
            checkpoint), ``"failed"`` (degraded under ``keep_going``),
            or ``"skipped"`` (cut off by ``--until``).
        wall_s: wall time the stage took in this run (cache/resume hits
            report the replay cost, not the original compute).
        cache_hit: whether the stage's work was reused rather than done.
        fingerprint: input fingerprint the stage ran (or would run)
            under; the stage-cache key.
        cpu_s: CPU seconds the stage burned (``time.process_time``
            delta), or None when profiling was off.  Only populated by
            ``obs.profile``; never part of the fingerprint.
        peak_mem_kb: peak traced heap (KiB) inside the stage, or None
            when memory profiling was off.
    """

    name: str
    status: str
    wall_s: float
    cache_hit: bool
    fingerprint: str = ""
    cpu_s: float | None = None
    peak_mem_kb: float | None = None

    def to_dict(self) -> dict:
        # Profile fields are emitted only when measured, so with
        # profiling off the serialized form is byte-identical to the
        # pre-profiling schema (goldens, sweep-resume ledgers).
        payload = {
            "name": self.name,
            "status": self.status,
            "wall_s": self.wall_s,
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
        }
        if self.cpu_s is not None:
            payload["cpu_s"] = self.cpu_s
        if self.peak_mem_kb is not None:
            payload["peak_mem_kb"] = self.peak_mem_kb
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StageRecord":
        """Rebuild a stage record from its :meth:`to_dict` form."""
        cpu_s = payload.get("cpu_s")
        peak_mem_kb = payload.get("peak_mem_kb")
        return cls(
            name=str(payload.get("name", "")),
            status=str(payload.get("status", "")),
            wall_s=float(payload.get("wall_s", 0.0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            fingerprint=str(payload.get("fingerprint", "")),
            cpu_s=None if cpu_s is None else float(cpu_s),
            peak_mem_kb=(None if peak_mem_kb is None
                         else float(peak_mem_kb)),
        )


@dataclass
class FlowResult:
    """Outcome of one end-to-end implementation flow.

    Attributes:
        name: flow label.
        style: name of the implementation style that produced the
            result -- any key of the backend registry
            (``"asic"``, ``"custom"``, ``"structured"``, ...).
        technology: process the flow targeted.
        library_name: cell library used.
        typical_frequency_mhz: frequency of median silicon (from STA at
            the typical corner).
        quoted_frequency_mhz: the marketable number -- worst-case quote
            for an ASIC, flagship bin for a custom part (Section 8).
        min_period_ps: STA minimum period at the typical corner.
        fo4_depth: cycle depth in FO4 of the flow's technology.
        logic_fo4: combinational portion of the cycle.
        overhead_fraction: non-logic share of the cycle.
        pipeline_stages: stage count implemented.
        gate_count: instances in the final netlist.
        area_um2: total cell area.
        notes: per-stage annotations (placement wirelength, sizing moves,
            domino factor, quote ratios...).
        diagnostics: structured findings collected during the run --
            stage failures captured under ``on_error="keep_going"`` and
            pre-flight validation warnings.  Empty for a clean run.
        stage_records: per-stage execution records (wall time, cache-hit
            status, fingerprint) from the stage-graph engine, in run
            order.
    """

    name: str
    style: str
    technology: ProcessTechnology
    library_name: str
    typical_frequency_mhz: float
    quoted_frequency_mhz: float
    min_period_ps: float
    fo4_depth: float
    logic_fo4: float
    overhead_fraction: float
    pipeline_stages: int
    gate_count: int
    area_um2: float
    notes: dict[str, float] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    stage_records: list[StageRecord] = field(default_factory=list)

    @property
    def quote_factor(self) -> float:
        """Quoted over typical frequency (ASIC < 1, custom flagship > 1)."""
        return self.quoted_frequency_mhz / self.typical_frequency_mhz

    @property
    def degraded(self) -> bool:
        """True when any stage failed and a fallback value was used."""
        return any(d.code == "flow.stage_failed" for d in self.diagnostics)

    def failed_stages(self) -> list[str]:
        """Stages that failed and were skipped/degraded, in run order."""
        return [
            d.subject for d in self.diagnostics
            if d.code == "flow.stage_failed"
        ]

    def to_dict(self) -> dict:
        """JSON-ready form of the result.

        The technology collapses to its name and FO4 delay; everything
        else is the scalar fields plus the notes dict, so traces, metric
        dumps and the CLI's ``--json`` output all share one shape.
        """
        return {
            "name": self.name,
            "style": self.style,
            "technology": self.technology.name,
            "fo4_delay_ps": self.technology.fo4_delay_ps,
            "library_name": self.library_name,
            "typical_frequency_mhz": self.typical_frequency_mhz,
            "quoted_frequency_mhz": self.quoted_frequency_mhz,
            "quote_factor": self.quote_factor,
            "min_period_ps": self.min_period_ps,
            "fo4_depth": self.fo4_depth,
            "logic_fo4": self.logic_fo4,
            "overhead_fraction": self.overhead_fraction,
            "pipeline_stages": self.pipeline_stages,
            "gate_count": self.gate_count,
            "area_um2": self.area_um2,
            "notes": dict(self.notes),
            "degraded": self.degraded,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "stages": [r.to_dict() for r in self.stage_records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowResult":
        """Rebuild a result from its :meth:`to_dict` form.

        The inverse of :meth:`to_dict` up to the technology object,
        which is resolved back through the
        :data:`~repro.tech.process.TECHNOLOGIES` registry by name --
        the same objects every flow run uses, so a replayed result is
        ``==``-comparable (and ``to_dict``-identical) to a freshly
        computed one.  This is what ledger-backed sweep resume rests
        on.

        Raises:
            FlowError: when the payload names an unknown technology.
        """
        from repro.tech.process import get_technology

        tech_name = str(payload.get("technology", ""))
        try:
            technology = get_technology(tech_name)
        except KeyError as exc:
            raise FlowError(
                f"cannot rebuild flow result: {exc.args[0]}"
            ) from None
        return cls(
            name=str(payload.get("name", "")),
            style=str(payload.get("style", "")),
            technology=technology,
            library_name=str(payload.get("library_name", "")),
            typical_frequency_mhz=float(
                payload.get("typical_frequency_mhz", 0.0)
            ),
            quoted_frequency_mhz=float(
                payload.get("quoted_frequency_mhz", 0.0)
            ),
            min_period_ps=float(payload.get("min_period_ps", 0.0)),
            fo4_depth=float(payload.get("fo4_depth", 0.0)),
            logic_fo4=float(payload.get("logic_fo4", 0.0)),
            overhead_fraction=float(
                payload.get("overhead_fraction", 0.0)
            ),
            pipeline_stages=int(payload.get("pipeline_stages", 0)),
            gate_count=int(payload.get("gate_count", 0)),
            area_um2=float(payload.get("area_um2", 0.0)),
            notes=dict(payload.get("notes") or {}),
            diagnostics=[
                Diagnostic.from_dict(d)
                for d in payload.get("diagnostics") or []
            ],
            stage_records=[
                StageRecord.from_dict(s)
                for s in payload.get("stages") or []
            ],
        )

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.name:<24s} {self.style:<7s} "
            f"typ {self.typical_frequency_mhz:7.1f} MHz  "
            f"quote {self.quoted_frequency_mhz:7.1f} MHz  "
            f"{self.fo4_depth:5.1f} FO4 "
            f"({self.pipeline_stages} stages, {self.gate_count} gates)"
        )
