"""Multi-fab speed spread and fab access.

Section 8.1.2: "in the same technology, the speed of identical ASIC
designs (but with different standard cell libraries and resulting
synthesized circuitry for the different foundries) may vary by 20% to
25% between fabrication plants of different companies", while "within a
company, there are standards to ensure the same yields and quality at
different fabrication plants" (Intel's Copy Exactly!, reference [20]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.process import ProcessTechnology
from repro.variation.components import VariationComponents, VariationError
from repro.variation.montecarlo import SpeedDistribution, sample_chip_speeds


@dataclass(frozen=True)
class FabProfile:
    """One foundry's realisation of a nominal technology.

    Attributes:
        name: foundry name.
        speed_factor: nominal frequency multiplier relative to the best
            fab in the generation (1.0 = the leader).
        components: the fab's variation components.
        asic_accessible: whether ASIC customers can buy capacity here
            (Section 8.2: "ASIC designers may not have access to the best
            fabrication plants").
    """

    name: str
    speed_factor: float
    components: VariationComponents
    asic_accessible: bool = True

    def __post_init__(self) -> None:
        if not 0.3 <= self.speed_factor <= 1.0:
            raise VariationError("speed factor must be in [0.3, 1.0]")


def default_foundry_set(
    components: VariationComponents,
) -> list[FabProfile]:
    """A representative late-90s foundry landscape.

    The leader runs a tuned short-Leff process reserved for its own
    custom parts; merchant fabs trail by up to ~20%, inside the paper's
    20-25% fab-to-fab band.
    """
    return [
        FabProfile("leader_internal", 1.00, components, asic_accessible=False),
        FabProfile("merchant_a", 0.95, components),
        FabProfile("merchant_b", 0.88, components),
        FabProfile("merchant_c", 0.81, components.scaled(1.15)),
    ]


def fab_spread(fabs: list[FabProfile]) -> float:
    """Best-over-worst nominal speed ratio across the set."""
    if not fabs:
        raise VariationError("no fabs")
    factors = [f.speed_factor for f in fabs]
    return max(factors) / min(factors)


def fab_distributions(
    nominal_mhz: float,
    fabs: list[FabProfile],
    count: int = 8000,
    seed: int = 11,
) -> dict[str, SpeedDistribution]:
    """Sample a die population per fab for the same design."""
    out = {}
    for i, fab in enumerate(fabs):
        out[fab.name] = sample_chip_speeds(
            nominal_mhz * fab.speed_factor,
            fab.components,
            count=count,
            seed=seed + i,
        )
    return out


def best_accessible_fab(fabs: list[FabProfile], asic: bool) -> FabProfile:
    """Fastest fab a design team can actually use.

    Custom teams at an IDM reach the internal leader; ASIC customers are
    restricted to merchant capacity -- one concrete piece of the
    "accessibility" half of Section 8's factor.
    """
    candidates = [f for f in fabs if f.asic_accessible or not asic]
    if not candidates:
        raise VariationError("no accessible fab")
    return max(candidates, key=lambda f: f.speed_factor)


def accessibility_penalty(fabs: list[FabProfile]) -> float:
    """Speed ratio between the best custom-reachable and ASIC-reachable fab."""
    best_custom = best_accessible_fab(fabs, asic=False)
    best_asic = best_accessible_fab(fabs, asic=True)
    return best_custom.speed_factor / best_asic.speed_factor
