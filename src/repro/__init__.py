"""repro: a reproduction of Chinnery & Keutzer, DAC 2000.

"Closing the Gap Between ASIC and Custom: An ASIC Perspective" quantifies
why custom ICs ran 6-8x faster than ASICs in the same process.  This
package rebuilds the analysis as an executable system:

* substrates -- process technology (:mod:`repro.tech`), cell libraries
  (:mod:`repro.cells`), netlists (:mod:`repro.netlist`), synthesis
  (:mod:`repro.synth`), datapath generators (:mod:`repro.datapath`),
  static timing (:mod:`repro.sta`), physical design
  (:mod:`repro.physical`), sizing (:mod:`repro.sizing`), logic families
  (:mod:`repro.circuit`), pipelining (:mod:`repro.pipeline`) and process
  variation (:mod:`repro.variation`);
* the paper's contribution -- the factor decomposition and gap analysis
  (:mod:`repro.core`) driven by real end-to-end ASIC and custom flows
  (:mod:`repro.flows`).

Quick start::

    from repro.flows import run_asic_flow, run_custom_flow
    from repro.core import analyze_gap

    asic = run_asic_flow()
    custom = run_custom_flow()
    print(analyze_gap(asic, custom).table())
"""

__version__ = "1.0.0"

from repro.core.factors import FactorModel, PAPER_FACTORS
from repro.core.gap import GapReport, analyze_gap
from repro.core.survey import SURVEY, headline_gap
from repro.flows.asic import AsicFlowOptions, run_asic_flow
from repro.flows.custom import CustomFlowOptions, run_custom_flow

__all__ = [
    "AsicFlowOptions",
    "CustomFlowOptions",
    "FactorModel",
    "GapReport",
    "PAPER_FACTORS",
    "SURVEY",
    "__version__",
    "analyze_gap",
    "headline_gap",
    "run_asic_flow",
    "run_custom_flow",
]
