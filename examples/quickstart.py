"""Quickstart: reproduce the paper's headline gap on one workload.

Runs the naive ASIC flow and the all-levers custom flow on the same
8-bit ALU, prints both results, and decomposes the measured gap the way
Section 9 of the paper does.

Run with::

    python examples/quickstart.py
"""

from repro.core import analyze_gap, gap_summary
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    run_asic_flow,
    run_custom_flow,
)


def main() -> None:
    print("=" * 72)
    print("Section 2 survey (published data points)")
    print("=" * 72)
    print(gap_summary())
    print()

    print("=" * 72)
    print("Measured flows (this reproduction's simulator)")
    print("=" * 72)
    asic = run_asic_flow(
        AsicFlowOptions(workload="cpu", bits=8, sizing_moves=20)
    )
    print(asic.summary())
    custom = run_custom_flow(
        CustomFlowOptions(
            workload="cpu_macro", bits=8, target_cycle_fo4=14.0,
            sizing_moves=30,
        )
    )
    print(custom.summary())
    print()

    print("=" * 72)
    print("Gap decomposition (Section 3/9 form, measured)")
    print("=" * 72)
    report = analyze_gap(asic, custom)
    print(report.table())
    print()
    print(
        f"paper: observed gap 6-8x, theoretical max ~18x; "
        f"measured here: {report.total_ratio:.1f}x"
    )


if __name__ == "__main__":
    main()
