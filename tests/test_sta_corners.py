"""Tests for corner-aware STA (delay derating, Section 8's corner stack)."""

import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.sta import (
    TimingError,
    analyze,
    asic_clock,
    register_boundaries,
)
from repro.tech import CMOS250_ASIC, CornerType, get_corner

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(20000.0)


@pytest.fixture(scope="module")
def registered():
    return register_boundaries(kogge_stone_adder(8, RICH), RICH)


class TestCornerDerating:
    def test_worst_case_slower_than_typical(self, registered):
        tt = analyze(registered, RICH, CLK)
        wc = analyze(
            registered, RICH, CLK,
            delay_derate=get_corner(CornerType.WORST_CASE).delay_derate,
        )
        assert wc.min_period_ps > tt.min_period_ps

    def test_best_case_faster_than_typical(self, registered):
        tt = analyze(registered, RICH, CLK)
        bc = analyze(
            registered, RICH, CLK,
            delay_derate=get_corner(CornerType.BEST_CASE).delay_derate,
        )
        assert bc.min_period_ps < tt.min_period_ps

    def test_derate_scales_everything_but_skew(self, registered):
        tt = analyze(registered, RICH, CLK)
        wc = analyze(registered, RICH, CLK, delay_derate=1.65)
        # arrival and setup scale by exactly 1.65; skew stays fixed.
        assert wc.critical.data_arrival_ps == pytest.approx(
            1.65 * tt.critical.data_arrival_ps, rel=1e-6
        )
        assert wc.critical.capture_overhead_ps == pytest.approx(
            1.65 * tt.critical.capture_overhead_ps, rel=1e-6
        )
        assert wc.critical.skew_ps == pytest.approx(tt.critical.skew_ps)

    def test_corner_ordering_monotone(self, registered):
        periods = []
        for corner_type in (
            CornerType.BEST_CASE, CornerType.FAST, CornerType.TYPICAL,
            CornerType.SLOW, CornerType.WORST_CASE,
        ):
            derate = get_corner(corner_type).delay_derate
            periods.append(
                analyze(registered, RICH, CLK,
                        delay_derate=derate).min_period_ps
            )
        assert periods == sorted(periods)

    def test_fast_corner_worsens_hold(self):
        # Direct flop-to-flop: less data delay at the fast corner means
        # the same hold check is harder (or equal) to meet.
        from repro.netlist import Module

        m = Module("h")
        m.add_input("clk")
        m.add_input("d")
        m.add_output("q")
        ff = RICH.flip_flop().name
        m.add_instance("f1", ff, inputs={"D": "d", "CK": "clk"},
                       outputs={"Q": "mid"})
        m.add_instance("f2", ff, inputs={"D": "mid", "CK": "clk"},
                       outputs={"Q": "q"})
        clk = asic_clock(5000.0)
        tt = analyze(m, RICH, clk)
        fast = analyze(
            m, RICH, clk,
            delay_derate=get_corner(CornerType.BEST_CASE).delay_derate,
        )
        def f2_violation(report):
            return next(
                v for v in report.hold_violations if v.endpoint == "f2.D"
            )

        assert tt.hold_violations and fast.hold_violations
        # The register-launched path (f2.D) gets less data delay at the
        # fast corner, so its hold slack worsens.
        assert f2_violation(fast).slack_ps < f2_violation(tt).slack_ps

    def test_invalid_derate(self, registered):
        with pytest.raises(TimingError):
            analyze(registered, RICH, CLK, delay_derate=0.0)

    def test_wc_quote_consistency_with_binning(self, registered):
        """The STA-at-WC-corner frequency and the binning module's quote
        derate must tell the same story (same 1.65x derate stack)."""
        from repro.variation import MATURE_PROCESS, sample_chip_speeds
        from repro.variation.binning import asic_worst_case_quote

        tt = analyze(registered, RICH, CLK)
        wc = analyze(
            registered, RICH, CLK,
            delay_derate=get_corner(CornerType.WORST_CASE).delay_derate,
        )
        dist = sample_chip_speeds(
            tt.max_frequency_mhz, MATURE_PROCESS, count=4000, seed=4
        )
        quote = asic_worst_case_quote(dist)
        # Both ways of deriving the quote agree within the skew dilution
        # and the process-floor detail.
        sta_quote = wc.max_frequency_mhz
        assert sta_quote / quote == pytest.approx(1.0, abs=0.45)
