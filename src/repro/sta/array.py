"""Vectorized array-backed STA: levelized compilation + batched sweeps.

The object engine in :mod:`repro.sta.engine` walks Python dicts per pin;
profiling shows that interpreter dispatch -- not arithmetic -- is the
cost of an ``analyze()``.  This module compiles the timing graph once
into flat numpy arrays (a levelized CSR-style layout) so one analysis
becomes a handful of vectorized level sweeps, and a *batch* of analyses
(Monte Carlo samples, process corners) broadcasts a leading sample axis
through the same sweeps instead of running N sequential object-engine
passes.

Layout
------

Combinational instances are sorted by ``(level, topological position)``
where a net's level is the longest instance chain from any start net.
Every input pin becomes one *arc* in a flat array ordered by
``(level, instance, pin order)``; instances own contiguous arc segments
(CSR style), and each level owns a contiguous range of arcs, instances
and output nets.  Per-arc delay models are reduced to coefficients at
compile time, at the instance's actual load:

* linear arcs: ``delay = k_const + k_sens * slew`` with a constant
  output slew (the linear model's output slew is load-only);
* NLDM arcs: the bilinear table interpolation at a fixed load collapses
  to a 1-D row table over the slew axis; rows are precomputed with the
  *same* floating-point expression as :func:`repro.cells.delay._bilinear`
  so interpolation stays bitwise identical.

A level sweep gathers source arrivals/slews, evaluates all arcs at once,
and reduces per-instance segments with ``np.maximum.reduceat`` /
``np.minimum.reduceat``.  Max/min of floats is exact (no rounding), and
the first-max tie-break of the object engine is reproduced by taking the
minimum arc index among equality matches -- so arrivals, slews *and* the
critical-path trace are bitwise equal to ``analyze()``.

Oracle fallback
---------------

Anything outside the engineered-equal happy path -- undriven logic,
non-finite loads or arrivals, negative slews, unknown arc models --
raises the internal :class:`_ArrayFallback` and the caller delegates the
whole analysis to the object engine, which reproduces the exact error
(or the exact NaN-shadowing semantics when the finite guard is off).
``check=`` mode runs the object engine anyway and asserts equality, the
same belt-and-braces pattern as ``TimingSession(check=True)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.cells.delay import LinearDelayArc, NLDMArc, _bracket
from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.sta.clocking import Clock
from repro.sta.engine import (
    DEFAULT_INPUT_SLEW_PS,
    TimingReport,
    analyze,
    build_report,
)
from repro.sta.timing_graph import TimingError, TimingGraph, WireParasitics

#: Samples propagated per batch in the Monte Carlo kernel; bounds the
#: working set to ``chunk * nets`` floats while leaving the RNG stream
#: (drawn in sample order) bitwise identical to the sequential path.
MC_CHUNK = 2048


class ArrayCheckError(TimingError):
    """Vectorized and object-engine STA disagreed (``check=`` violation)."""


class _ArrayFallback(Exception):
    """Internal: this analysis needs the object engine (exact errors /
    NaN-shadowing semantics the vectorized path cannot reproduce)."""


def _kind_of(arc) -> int:
    if isinstance(arc, LinearDelayArc):
        return 0
    if isinstance(arc, NLDMArc):
        return 1
    return 2


class CompiledTiming:
    """A timing graph compiled to levelized arrays.

    Construction never raises for *semantic* problems (undriven nets,
    poisoned tables): those set a fallback reason and every
    :meth:`propagate` raises :class:`_ArrayFallback`, letting callers
    delegate to the object engine for the exact error.  Structure is
    immutable; coefficients can be re-derived for individual instances
    after a cell swap with :meth:`refresh` (what array sizing sessions
    do between trials).
    """

    def __init__(
        self,
        module: Module,
        library: CellLibrary,
        wire: WireParasitics | None = None,
        output_load_ff: float | None = None,
    ) -> None:
        self.module = module
        self.library = library
        self.graph = TimingGraph(module, library, wire, output_load_ff)
        self._fallback: str | None = None
        obs.count("sta.array.compile.calls")
        self._build_structure()
        if self._fallback is None:
            self._build_coefficients()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _build_structure(self) -> None:
        graph = self.graph
        module = self.module
        order = topological_order(module, graph.sequential_cell_names())

        net_id: dict[str, int] = {}

        def nid(net: str) -> int:
            got = net_id.get(net)
            if got is None:
                got = len(net_id)
                net_id[net] = got
            return got

        start = graph.start_nets()
        input_ids = [nid(n) for n, k in start.items() if k == "input"]
        start_ids = [nid(n) for n in start]

        reg_ids: list[int] = []
        reg_clkq: list[float] = []
        for name in graph.sequential_instances():
            cell = graph.cell_of(name)
            inst = module.instance(name)
            for net in inst.outputs.values():
                reg_ids.append(nid(net))
                reg_clkq.append(cell.sequential.clk_to_q_ps)

        # Levelize in topological order; the walk also proves every comb
        # input is driven (the engine's first structural check).
        net_level: dict[str, int] = {net: 0 for net in start}
        comb: list[tuple[str, int]] = []
        for name in order:
            cell = graph.cell_of(name)
            if cell.is_sequential:
                continue
            inst = module.instance(name)
            if not inst.outputs:
                continue
            if not inst.inputs:
                # The object engine stores a None arrival here and fails
                # later in an untyped way; delegate rather than guess.
                self._fallback = f"instance {name!r} has outputs but no inputs"
                return
            lvl = 0
            for in_net in inst.inputs.values():
                got = net_level.get(in_net)
                if got is None:
                    self._fallback = (
                        f"net {in_net!r} feeding {name} has no arrival"
                    )
                    return
                if got > lvl:
                    lvl = got
            for net in inst.outputs.values():
                net_level[net] = lvl + 1
            comb.append((name, lvl))

        by_level = sorted(range(len(comb)), key=lambda i: (comb[i][1], i))

        arc_src: list[int] = []
        arc_wire: list[float] = []
        self._arc_inst: list[str] = []
        self._arc_pin: list[str] = []
        self._inst_names: list[str] = []
        seg_start: list[int] = []
        narcs: list[int] = []
        out_net: list[int] = []
        out_owner: list[int] = []
        levels: list[dict] = []
        prev_lvl = None
        for slot, ci in enumerate(by_level):
            name, lvl = comb[ci]
            if lvl != prev_lvl:
                levels.append(
                    {"a0": len(arc_src), "i0": slot, "o0": len(out_net)}
                )
                prev_lvl = lvl
            inst = module.instance(name)
            self._inst_names.append(name)
            seg_start.append(len(arc_src))
            narcs.append(len(inst.inputs))
            for pin, in_net in inst.inputs.items():
                arc_src.append(net_id[in_net])
                arc_wire.append(graph.wire.delay(in_net))
                self._arc_inst.append(name)
                self._arc_pin.append(pin)
            for net in inst.outputs.values():
                out_net.append(nid(net))
                out_owner.append(slot)
            levels[-1].update(
                {"a1": len(arc_src), "i1": slot + 1, "o1": len(out_net)}
            )

        self._net_ids = net_id
        self._n_nets = len(net_id)
        self._net_names = [None] * len(net_id)
        for net, i in net_id.items():
            self._net_names[i] = net
        self._input_ids = np.asarray(input_ids, dtype=np.int64)
        self._start_ids = np.asarray(start_ids, dtype=np.int64)
        self._reg_ids = np.asarray(reg_ids, dtype=np.int64)
        self._reg_clkq = np.asarray(reg_clkq)
        self._arc_src = np.asarray(arc_src, dtype=np.int64)
        self._arc_wire = np.asarray(arc_wire)
        self._inst_seg = np.asarray(seg_start, dtype=np.int64)
        self._inst_narcs = np.asarray(narcs, dtype=np.int64)
        self._out_net = np.asarray(out_net, dtype=np.int64)
        self._out_owner = np.asarray(out_owner, dtype=np.int64)
        self._slot_of = {n: i for i, n in enumerate(self._inst_names)}
        for lv in levels:
            lv["src"] = self._arc_src[lv["a0"]:lv["a1"]]
            lv["wire"] = self._arc_wire[lv["a0"]:lv["a1"]]
            lv["segs"] = self._inst_seg[lv["i0"]:lv["i1"]] - lv["a0"]
            lv["counts"] = self._inst_narcs[lv["i0"]:lv["i1"]]
            lv["onet"] = self._out_net[lv["o0"]:lv["o1"]]
            lv["owner"] = self._out_owner[lv["o0"]:lv["o1"]] - lv["i0"]
        self._levels = levels

        n_arcs = len(arc_src)
        self._kind = np.zeros(n_arcs, dtype=np.int8)
        self._k_const = np.full(n_arcs, np.nan)
        self._k_sens = np.full(n_arcs, np.nan)
        self._k_outslew = np.full(n_arcs, np.nan)
        self._inst_load = np.full(len(self._inst_names), np.nan)
        self._slot_bad = np.zeros(len(self._inst_names), dtype=bool)
        self._tab_p = 0
        self._tab_n = np.zeros(n_arcs, dtype=np.int64)
        self._tab_axis = np.empty((n_arcs, 0))
        self._tab_delay = np.empty((n_arcs, 0))
        self._tab_slew = np.empty((n_arcs, 0))

    def _net_id(self, net: str) -> int | None:
        return self._net_ids.get(net)

    def _grow_tables(self, points: int) -> None:
        pad = points - self._tab_p
        self._tab_axis = np.pad(
            self._tab_axis, ((0, 0), (0, pad)), constant_values=np.inf
        )
        self._tab_delay = np.pad(self._tab_delay, ((0, 0), (0, pad)))
        self._tab_slew = np.pad(self._tab_slew, ((0, 0), (0, pad)))
        self._tab_p = points

    def _build_coefficients(self) -> None:
        for slot in range(len(self._inst_names)):
            self._refresh_slot(slot)

    def _refresh_slot(self, slot: int) -> None:
        name = self._inst_names[slot]
        inst = self.module.instance(name)
        cell = self.graph.cell_of(name)
        load = self.graph.instance_load_ff(name)
        self._inst_load[slot] = load
        bad = not (math.isfinite(load) and load >= 0.0)
        a = int(self._inst_seg[slot])
        for pin in inst.inputs:
            try:
                arc = cell.arc(pin)
            except Exception:
                self._slot_bad[slot] = True
                return
            kind = _kind_of(arc)
            self._kind[a] = kind
            if kind == 0:
                # Same grouping as LinearDelayArc.delay_ps: the load
                # term folds into the constant, the slew term stays.
                self._k_const[a] = (
                    arc.parasitic_ps + arc.effort_ps_per_ff * load
                )
                self._k_sens[a] = arc.slew_sensitivity
                self._k_outslew[a] = max(
                    arc.min_output_slew_ps,
                    arc.slew_ratio
                    * (arc.parasitic_ps + arc.effort_ps_per_ff * load),
                )
                if not bad and not math.isfinite(self._k_const[a]):
                    bad = True
            elif kind == 1:
                if bad:
                    a += 1
                    continue
                n = len(arc.slew_axis_ps)
                if n > self._tab_p:
                    self._grow_tables(n)
                lo, hi, t = _bracket(arc.load_axis_ff, load)
                self._tab_n[a] = n
                self._tab_axis[a, :n] = arc.slew_axis_ps
                self._tab_axis[a, n:] = np.inf
                for r in range(n):
                    drow = arc.delay_table_ps[r]
                    srow = arc.slew_table_ps[r]
                    # Bitwise-identical to _bilinear's row interpolation
                    # at this load.
                    self._tab_delay[a, r] = drow[lo] * (1 - t) + drow[hi] * t
                    self._tab_slew[a, r] = srow[lo] * (1 - t) + srow[hi] * t
                if not (
                    np.isfinite(self._tab_delay[a, :n]).all()
                    and np.isfinite(self._tab_slew[a, :n]).all()
                ):
                    bad = True
            else:
                # Unknown arc model: only the object engine evaluates it
                # faithfully (including its exceptions).
                bad = True
            a += 1
        self._slot_bad[slot] = bad

    def refresh(self, instance_names) -> None:
        """Re-derive loads and arc coefficients for changed instances.

        Call after ``module.replace_cell`` + ``graph.rebind`` with the
        swapped instance and the drivers of its input nets (their loads
        changed).  Names without a combinational slot are ignored.
        """
        for name in instance_names:
            slot = self._slot_of.get(name)
            if slot is not None:
                self._refresh_slot(slot)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(
        self,
        input_slew_ps: float,
        input_arrival_ps: float,
        derates: np.ndarray,
    ) -> "ArrayState":
        """Batched level-sweep propagation; one batch row per derate.

        Raises:
            _ArrayFallback: when exact equivalence with the object
                engine cannot be guaranteed (the caller must delegate).
        """
        if self._fallback is not None:
            raise _ArrayFallback(self._fallback)
        if self._slot_bad.any():
            which = self._inst_names[int(np.nonzero(self._slot_bad)[0][0])]
            raise _ArrayFallback(f"instance {which!r} needs the object engine")
        if not (math.isfinite(input_slew_ps) and input_slew_ps >= 0.0):
            raise _ArrayFallback(f"input slew {input_slew_ps}")
        obs.count("sta.array.propagate.calls")
        derates = np.asarray(derates, dtype=np.float64)
        b = derates.shape[0]
        n = self._n_nets
        arr = np.full((b, n), np.nan)
        marr = np.full((b, n), np.nan)
        slw = np.full((b, n), np.nan)
        best = np.full((b, n), -1, dtype=np.int64)
        arr[:, self._input_ids] = input_arrival_ps
        marr[:, self._input_ids] = input_arrival_ps
        slw[:, self._start_ids] = input_slew_ps
        if self._reg_ids.size:
            launch = self._reg_clkq[None, :] * derates[:, None]
            arr[:, self._reg_ids] = launch
            marr[:, self._reg_ids] = launch
        acc = np.zeros(b)
        cols_cache = np.arange(self._kind.shape[0])
        for lv in self._levels:
            a0, a1 = lv["a0"], lv["a1"]
            k = a1 - a0
            src = lv["src"]
            sl_in = slw[:, src]
            delay = np.empty((b, k))
            outsl = np.empty((b, k))
            kind = self._kind[a0:a1]
            lin = np.nonzero(kind == 0)[0]
            if lin.size:
                delay[:, lin] = (
                    self._k_const[a0 + lin][None, :]
                    + self._k_sens[a0 + lin][None, :] * sl_in[:, lin]
                )
                outsl[:, lin] = np.broadcast_to(
                    self._k_outslew[a0 + lin][None, :], (b, lin.size)
                )
            nld = np.nonzero(kind == 1)[0]
            if nld.size:
                g = a0 + nld
                ax = self._tab_axis[g]
                nn = self._tab_n[g]
                x = sl_in[:, nld]
                hi = (ax[None, :, :] < x[:, :, None]).sum(axis=2)
                hi = np.clip(hi, 1, (nn - 1)[None, :])
                lo = hi - 1
                c = np.arange(nld.size)[None, :]
                alo = ax[c, lo]
                t = (x - alo) / (ax[c, hi] - alo)
                dt = self._tab_delay[g]
                st = self._tab_slew[g]
                delay[:, nld] = dt[c, lo] * (1 - t) + dt[c, hi] * t
                outsl[:, nld] = st[c, lo] * (1 - t) + st[c, hi] * t
            delay *= derates[:, None]
            w = lv["wire"][None, :] * derates[:, None]
            at = (arr[:, src] + w) + delay
            mat = (marr[:, src] + w) + delay
            acc += at.sum(axis=1)
            segs = lv["segs"]
            mx = np.maximum.reduceat(at, segs, axis=1)
            mn = np.minimum.reduceat(mat, segs, axis=1)
            cand = np.where(
                at == np.repeat(mx, lv["counts"], axis=1),
                cols_cache[:k][None, :],
                k,
            )
            firsts = np.minimum.reduceat(cand, segs, axis=1)
            np.minimum(firsts, k - 1, out=firsts)
            bslew = np.take_along_axis(outsl, firsts, axis=1)
            onet, owner = lv["onet"], lv["owner"]
            arr[:, onet] = mx[:, owner]
            marr[:, onet] = mn[:, owner]
            slw[:, onet] = bslew[:, owner]
            best[:, onet] = (firsts + a0)[:, owner]
        if not np.isfinite(acc).all():
            # Cannot reproduce the engine's NaN handling (named error
            # with the guard on, max-shadowing with it off) with
            # np.maximum, which propagates NaN.
            raise _ArrayFallback("non-finite arrival accumulator")
        # Negative slews would make the object engine raise
        # DelayModelError at the consuming arc; delegate for that error.
        if self._out_net.size and not (slw[:, self._out_net] >= 0.0).all():
            raise _ArrayFallback("negative output slew")
        return ArrayState(
            self, arr, marr, slw, best, derates,
            float(input_slew_ps), float(input_arrival_ps),
        )


class ArrayState:
    """Propagated arrivals for one batch of derates over one compile."""

    def __init__(
        self, compiled, arr, marr, slw, best, derates, input_slew,
        input_arrival,
    ) -> None:
        self.compiled = compiled
        self.arr = arr
        self.marr = marr
        self.slw = slw
        self.best = best
        self.derates = derates
        self._input_slew = input_slew
        self._input_arrival = input_arrival
        self._dicts: dict[int, tuple] = {}

    def batch_size(self) -> int:
        return int(self.derates.shape[0])

    def _as_dicts(self, row: int) -> tuple[dict, dict, dict, dict, dict]:
        got = self._dicts.get(row)
        if got is not None:
            return got
        ct = self.compiled
        nets = ct._net_names
        arrival: dict[str, float] = {}
        min_arrival: dict[str, float] = {}
        slew: dict[str, float] = {}
        trace: dict[str, tuple[str, str] | None] = {}
        launch_q: dict[str, float] = {}
        for i in ct._start_ids:
            net = nets[i]
            trace[net] = None
            slew[net] = self._input_slew
        for i in ct._input_ids:
            net = nets[i]
            arrival[net] = self._input_arrival
            min_arrival[net] = self._input_arrival
        arr_row = self.arr[row]
        marr_row = self.marr[row]
        slw_row = self.slw[row]
        best_row = self.best[row]
        for i in ct._reg_ids:
            net = nets[i]
            value = float(arr_row[i])
            arrival[net] = value
            min_arrival[net] = value
            launch_q[net] = value
        for i in ct._out_net:
            net = nets[i]
            arrival[net] = float(arr_row[i])
            min_arrival[net] = float(marr_row[i])
            slew[net] = float(slw_row[i])
            a = int(best_row[i])
            trace[net] = (ct._arc_inst[a], ct._arc_pin[a])
        got = (arrival, min_arrival, slew, trace, launch_q)
        self._dicts[row] = got
        return got

    def report(self, clock: Clock, row: int = 0) -> TimingReport:
        """Assemble the engine-identical report for one batch row."""
        from repro.sta.engine import _finite_guard_active

        arrival, min_arrival, slew, trace, launch_q = self._as_dicts(row)
        return build_report(
            self.compiled.graph, clock, arrival, min_arrival, trace,
            launch_q, delay_derate=float(self.derates[row]),
            finite_guard=_finite_guard_active(),
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _check_derate(delay_derate: float) -> None:
    if not (delay_derate > 0.0) or math.isinf(delay_derate):
        raise TimingError(
            f"delay derate must be a positive finite number, "
            f"got {delay_derate}"
        )


def compile_timing(
    module: Module,
    library: CellLibrary,
    wire: WireParasitics | None = None,
    output_load_ff: float | None = None,
) -> CompiledTiming:
    """Compile a netlist+library binding into levelized timing arrays."""
    return CompiledTiming(module, library, wire, output_load_ff)


def clock_analyzer(
    module: Module,
    library: CellLibrary,
    wire: WireParasitics | None = None,
    input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    input_arrival_ps: float = 0.0,
    output_load_ff: float | None = None,
    delay_derate: float = 1.0,
    check: bool = False,
):
    """One compile + propagate, reusable across clocks.

    Arrival propagation does not depend on the clock (skew/borrowing
    enter at the endpoint accounting), so iterative period solving can
    pay for the propagation once and re-derive only reports.  Returns a
    ``run(clock) -> TimingReport`` callable; if the design needs the
    object engine the callable delegates to :func:`analyze` per call.
    """
    _check_derate(delay_derate)

    def run_object(clk: Clock) -> TimingReport:
        return analyze(
            module, library, clk, wire=wire, input_slew_ps=input_slew_ps,
            input_arrival_ps=input_arrival_ps, output_load_ff=output_load_ff,
            delay_derate=delay_derate,
        )

    try:
        compiled = compile_timing(module, library, wire, output_load_ff)
        state = compiled.propagate(
            input_slew_ps, input_arrival_ps, np.array([delay_derate])
        )
    except _ArrayFallback:
        obs.count("sta.array.fallbacks")
        return run_object

    def run(clk: Clock) -> TimingReport:
        obs.count("sta.array.analyze.calls")
        report = state.report(clk)
        if check:
            assert_reports_match(report, run_object(clk))
        return report

    return run


def analyze_array(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    input_arrival_ps: float = 0.0,
    output_load_ff: float | None = None,
    delay_derate: float = 1.0,
    check: bool = False,
) -> TimingReport:
    """Drop-in vectorized :func:`repro.sta.engine.analyze`.

    Same arguments, same report, same errors; ``check=True`` also runs
    the object engine and raises :class:`ArrayCheckError` on any
    divergence (exact critical path, arrivals within 1e-9 ps).
    """
    return clock_analyzer(
        module, library, wire=wire, input_slew_ps=input_slew_ps,
        input_arrival_ps=input_arrival_ps, output_load_ff=output_load_ff,
        delay_derate=delay_derate, check=check,
    )(clock)


def batch_analyze(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    derates,
    wire: WireParasitics | None = None,
    input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    input_arrival_ps: float = 0.0,
    output_load_ff: float | None = None,
) -> list[TimingReport]:
    """One report per derate from a single compile + batched propagate.

    The workhorse behind corner evaluation: the derate is a batch axis,
    so five corners cost one propagation.  Each row is bitwise equal to
    ``analyze(..., delay_derate=d)``.
    """
    derates = [float(d) for d in derates]
    for d in derates:
        _check_derate(d)
    try:
        compiled = compile_timing(module, library, wire, output_load_ff)
        state = compiled.propagate(
            input_slew_ps, input_arrival_ps, np.asarray(derates)
        )
    except _ArrayFallback:
        obs.count("sta.array.fallbacks")
        return [
            analyze(
                module, library, clock, wire=wire,
                input_slew_ps=input_slew_ps,
                input_arrival_ps=input_arrival_ps,
                output_load_ff=output_load_ff, delay_derate=d,
            )
            for d in derates
        ]
    obs.count("sta.array.analyze.calls", len(derates))
    return [state.report(clock, row) for row in range(len(derates))]


def monte_carlo_min_period_batched(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    sigma_fraction: float = 0.05,
    samples: int = 200,
    seed: int = 1,
    wire: WireParasitics | None = None,
) -> np.ndarray:
    """Batched Monte Carlo minimum periods; bitwise equal to the
    sequential :func:`repro.sta.statistical.monte_carlo_min_period`.

    All samples in a chunk propagate as one matrix pass (sample axis
    through the level sweeps).  The RNG stream is consumed in the exact
    per-sample order of the sequential loop -- a vector draw of ``n``
    normals consumes the generator identically to ``n`` scalar draws --
    so the returned periods match element for element.
    """
    from repro.sta.statistical import _gate_delay_stats

    if samples < 1:
        raise TimingError("need at least one sample")
    profiling = obs.enabled()
    start_s = obs.MONOTONIC() if profiling else 0.0
    compiled = compile_timing(module, library, wire)
    graph = compiled.graph
    fallback = compiled._fallback is not None or compiled._slot_bad.any()
    if not fallback:
        gate_stats = _gate_delay_stats(graph, module, sigma_fraction)
        keys = sorted(gate_stats)
        nominals = np.array([gate_stats[k][0] for k in keys])
        key_pos = {k: i for i, k in enumerate(keys)}
        arc_key = np.array(
            [
                key_pos[(inst, pin)]
                for inst, pin in zip(compiled._arc_inst, compiled._arc_pin)
            ],
            dtype=np.int64,
        )
        fallback = not (
            math.isfinite(sigma_fraction)
            and np.isfinite(nominals).all()
            and np.isfinite(compiled._arc_wire).all()
        )
    if fallback:
        # The sequential path silently max-shadows NaNs and raises raw
        # KeyErrors on undriven nets; reproduce it rather than guess.
        from repro.sta.statistical import monte_carlo_min_period

        obs.count("sta.array.fallbacks")
        return monte_carlo_min_period(
            module, library, clock, sigma_fraction=sigma_fraction,
            samples=samples, seed=seed, wire=wire, batched=False,
        )

    seq_rows = []
    for name in graph.sequential_instances():
        cell = graph.cell_of(name)
        inst = module.instance(name)
        out_ids = np.array(
            [compiled._net_id(net) for net in inst.outputs.values()],
            dtype=np.int64,
        )
        seq_rows.append((cell.sequential.clk_to_q_ps, out_ids))

    ep_net: list[int] = []
    ep_wire: list[float] = []
    ep_setup: list[float] = []
    ep_borrow: list[float] = []
    ep_isreg: list[bool] = []
    for kind, detail in graph.endpoints():
        if kind == "port":
            net = str(detail)
            ep_setup.append(0.0)
            ep_borrow.append(0.0)
            ep_isreg.append(False)
        else:
            inst_name, pin = detail
            cell = graph.cell_of(inst_name)
            net = module.instance(inst_name).inputs[pin]
            ep_setup.append(cell.sequential.setup_ps)
            ep_borrow.append(
                clock.borrow_window_ps if cell.sequential.transparent else 0.0
            )
            ep_isreg.append(True)
        idx = compiled._net_id(net)
        if idx is None:
            # Endpoint fed by a net no one defines: the sequential loop
            # raises a KeyError at the first sample; let it.
            from repro.sta.statistical import monte_carlo_min_period

            obs.count("sta.array.fallbacks")
            return monte_carlo_min_period(
                module, library, clock, sigma_fraction=sigma_fraction,
                samples=samples, seed=seed, wire=wire, batched=False,
            )
        ep_net.append(idx)
        ep_wire.append(graph.wire.delay(net))
    ep_net_a = np.asarray(ep_net, dtype=np.int64)
    ep_wire_a = np.asarray(ep_wire)
    ep_setup_a = np.asarray(ep_setup)
    ep_borrow_a = np.asarray(ep_borrow)
    ep_isreg_a = np.asarray(ep_isreg, dtype=bool)
    if not (
        np.isfinite(ep_wire_a).all()
        and math.isfinite(clock.skew_ps)
        and math.isfinite(clock.borrow_window_ps)
    ):
        from repro.sta.statistical import monte_carlo_min_period

        obs.count("sta.array.fallbacks")
        return monte_carlo_min_period(
            module, library, clock, sigma_fraction=sigma_fraction,
            samples=samples, seed=seed, wire=wire, batched=False,
        )

    rng = np.random.default_rng(seed)
    n_keys = len(keys)
    n_seq = len(seq_rows)
    periods = np.empty(samples)
    for c0 in range(0, samples, MC_CHUNK):
        cs = min(MC_CHUNK, samples - c0)
        draws = np.empty((cs, n_keys))
        jit = np.empty((cs, n_seq))
        for s in range(cs):
            # Exact stream order of the sequential loop: one arc-vector
            # draw, then one jitter per sequential instance.
            draws[s] = rng.normal(1.0, sigma_fraction, size=n_keys)
            jit[s] = rng.normal(1.0, sigma_fraction, size=n_seq)
        delays_k = np.maximum(nominals[None, :] * draws, 0.0)
        arrv = np.full((cs, compiled._n_nets), np.nan)
        arrv[:, compiled._input_ids] = 0.0
        for i, (clkq, out_ids) in enumerate(seq_rows):
            launch = np.maximum(clkq * jit[:, i], 0.0)
            arrv[:, out_ids] = launch[:, None]
        for lv in compiled._levels:
            a0, a1 = lv["a0"], lv["a1"]
            at = (
                (arrv[:, lv["src"]] + lv["wire"][None, :])
                + delays_k[:, arc_key[a0:a1]]
            )
            mx = np.maximum.reduceat(at, lv["segs"], axis=1)
            arrv[:, lv["onet"]] = mx[:, lv["owner"]]
        if ep_net_a.size:
            t = arrv[:, ep_net_a] + ep_wire_a[None, :]
            treg = ((t + ep_setup_a[None, :]) + clock.skew_ps) - ep_borrow_a[
                None, :
            ]
            t = np.where(ep_isreg_a[None, :], treg, t)
            periods[c0:c0 + cs] = t.max(axis=1)
        else:
            periods[c0:c0 + cs] = -np.inf
    if profiling:
        obs.count("sta.array.mc.samples", samples)
        obs.observe(
            "sta.array.mc.samples_per_sec",
            samples / max(obs.MONOTONIC() - start_s, 1e-9),
        )
    return periods


# ----------------------------------------------------------------------
# check= equivalence
# ----------------------------------------------------------------------

#: Absolute tolerance of the check mode; the implementation is designed
#: for bitwise equality, the tolerance only decouples the contract from
#: that stronger property.
CHECK_ATOL_PS = 1e-9


def _near(a: float, b: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= CHECK_ATOL_PS


def assert_reports_match(
    array_report: TimingReport, object_report: TimingReport
) -> None:
    """Raise :class:`ArrayCheckError` unless the two reports agree.

    Critical path and endpoint identities must match exactly; times are
    compared to :data:`CHECK_ATOL_PS`.
    """

    def fail(what: str) -> None:
        raise ArrayCheckError(f"array/object STA divergence: {what}")

    a, o = array_report, object_report
    if not _near(a.min_period_ps, o.min_period_ps):
        fail(f"min period {a.min_period_ps} vs {o.min_period_ps}")
    if (a.critical.kind, a.critical.name) != (o.critical.kind, o.critical.name):
        fail(f"critical endpoint {a.critical.name} vs {o.critical.name}")
    if len(a.endpoints) != len(o.endpoints):
        fail("endpoint counts differ")
    for ea, eo in zip(a.endpoints, o.endpoints):
        if (ea.kind, ea.name) != (eo.kind, eo.name):
            fail(f"endpoint order {ea.name} vs {eo.name}")
        for field in (
            "data_arrival_ps", "min_period_ps", "launch_overhead_ps",
            "capture_overhead_ps", "skew_ps", "borrow_ps",
        ):
            if not _near(getattr(ea, field), getattr(eo, field)):
                fail(f"endpoint {ea.name} {field}")
    if len(a.critical_path) != len(o.critical_path):
        fail("critical path lengths differ")
    for sa, so in zip(a.critical_path, o.critical_path):
        if (sa.instance, sa.cell, sa.through_pin) != (
            so.instance, so.cell, so.through_pin
        ):
            fail(f"path step {sa.instance}.{sa.through_pin}")
        if not (_near(sa.delay_ps, so.delay_ps)
                and _near(sa.arrival_ps, so.arrival_ps)):
            fail(f"path timing at {sa.instance}")
    if len(a.hold_violations) != len(o.hold_violations):
        fail("hold violation counts differ")
    for ha, ho in zip(a.hold_violations, o.hold_violations):
        if ha.endpoint != ho.endpoint:
            fail(f"hold endpoint {ha.endpoint} vs {ho.endpoint}")
        if not (_near(ha.min_arrival_ps, ho.min_arrival_ps)
                and _near(ha.required_ps, ho.required_ps)):
            fail(f"hold timing at {ha.endpoint}")
