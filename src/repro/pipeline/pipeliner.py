"""Cutset pipelining of combinational netlists.

Section 4: "Pipelines place additional latches or registers in long
chains of logic, reducing the length of the critical path."  The
pipeliner levelises a combinational netlist, slices it into stages of
(approximately) equal depth, and inserts registers on every net crossing
a stage boundary -- with multi-register chains where a net skips stages,
so every input-to-output path carries exactly the same register count and
the pipelined module is a latency-``N`` wave-pipeline of the original.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.library import CellLibrary
from repro.netlist.graph import levelize, logic_depth
from repro.netlist.module import Module
from repro.pipeline.overheads import PipelineError


@dataclass(frozen=True)
class PipelineReport:
    """Result of pipelining a module.

    Attributes:
        module: the pipelined netlist.
        stages: stage count actually realised.
        registers_added: flip-flops inserted.
        latency_cycles: input-to-output latency in clock cycles.
        stage_depths: combinational gate depth of each stage.
    """

    module: Module
    stages: int
    registers_added: int
    latency_cycles: int
    stage_depths: tuple[int, ...]

    @property
    def balance(self) -> float:
        """Max stage depth over mean stage depth (1.0 = perfectly even).

        Section 4.1: "an ASIC may have unbalanced pipeline stages
        resulting in more levels of logic on the critical path".
        """
        mean = sum(self.stage_depths) / len(self.stage_depths)
        return max(self.stage_depths) / mean if mean else 1.0


def pipeline_module(
    module: Module,
    library: CellLibrary,
    stages: int,
    clock_name: str = "clk",
    use_latches: bool = False,
) -> PipelineReport:
    """Slice a combinational module into N register-separated stages.

    Args:
        module: purely combinational netlist (no sequential cells).
        library: provides the register cell.
        stages: desired stage count (clamped to the logic depth).
        clock_name: name of the added clock input.
        use_latches: insert transparent latches instead of flops.

    Raises:
        PipelineError: if the module already has registers or ``stages``
            is invalid.
    """
    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    seq_names = library.sequential_cell_names()
    for inst in module.iter_instances():
        if inst.cell_name in seq_names:
            raise PipelineError(
                f"module {module.name} already contains register {inst.name}"
            )
    depth = logic_depth(module)
    stages = min(stages, max(depth, 1))
    seq_cell = library.latch() if use_latches else library.flip_flop()
    clock_pin = seq_cell.sequential.clock_pin

    levels = levelize(module)
    # Stage of an instance: equal-depth buckets over levels.
    bucket = max(1, math.ceil(depth / stages))
    stage_of = {name: min(lvl // bucket, stages - 1)
                for name, lvl in levels.items()}

    piped = Module(f"{module.name}_p{stages}")
    clk = piped.add_input(clock_name)
    registers_added = 0

    # Input ports: registered once on entry (stage "-1 -> 0" boundary).
    source_stage: dict[str, int] = {}
    net_map_base: dict[str, str] = {}
    for port in module.inputs():
        outer = piped.add_input(port)
        inner = piped.add_net(f"{port}_s0")
        piped.add_instance(
            f"pin_{port}", seq_cell.name,
            inputs={"D": outer, clock_pin: clk},
            outputs={seq_cell.output: inner},
        )
        registers_added += 1
        net_map_base[port] = inner
        source_stage[port] = 0

    # Output-port nets are renamed to <port>_pre throughout the copied
    # logic, freeing the port name for the capture register's output.
    out_rename = {p: f"{p}_pre" for p in module.outputs()}

    # Copy logic; internal nets keep their names.
    for inst in module.iter_instances():
        for net in inst.outputs.values():
            source_stage[out_rename.get(net, net)] = stage_of[inst.name]

    # Register chains: net produced at stage s consumed at stage t > s
    # needs (t - s) registers.  Build lazily, one chain per net.
    chains: dict[str, list[str]] = {}

    def delayed(net: str, hops: int) -> str:
        if hops <= 0:
            return net_map_base.get(net, net)
        chain = chains.setdefault(net, [])
        while len(chain) < hops:
            src = chain[-1] if chain else net_map_base.get(net, net)
            out = piped.add_net(f"{net}_d{len(chain) + 1}")
            piped.add_instance(
                None, seq_cell.name,
                inputs={"D": src, clock_pin: clk},
                outputs={seq_cell.output: out},
            )
            nonlocal_count[0] += 1
            chain.append(out)
        return chain[hops - 1]

    nonlocal_count = [registers_added]
    for inst in module.iter_instances():
        my_stage = stage_of[inst.name]
        new_inputs = {}
        for pin, net in inst.inputs.items():
            renamed = out_rename.get(net, net)
            hops = my_stage - source_stage[renamed]
            if hops < 0:
                raise PipelineError(
                    f"level inversion on net {net} into {inst.name}"
                )
            new_inputs[pin] = delayed(renamed, hops)
        new_outputs = {
            pin: out_rename.get(net, net) for pin, net in inst.outputs.items()
        }
        piped.add_instance(
            inst.name, inst.cell_name,
            inputs=new_inputs, outputs=new_outputs,
            **dict(inst.attributes),
        )

    # Output ports: bring every output to stage N-1, then one capture
    # register driving the port.
    for port in module.outputs():
        driver = module.driver_of(port)
        if driver is None or not isinstance(driver, tuple):
            raise PipelineError(f"output {port!r} is not gate-driven")
        pre = out_rename[port]
        hops = (stages - 1) - source_stage[pre]
        tapped = delayed(pre, hops) if hops > 0 else pre
        piped.add_output(port)
        piped.add_instance(
            f"pout_{port}", seq_cell.name,
            inputs={"D": tapped, clock_pin: clk},
            outputs={seq_cell.output: port},
        )
        nonlocal_count[0] += 1

    piped.assert_well_formed()
    stage_depths = _stage_depths(levels, stage_of, stages, bucket)
    return PipelineReport(
        module=piped,
        stages=stages,
        registers_added=nonlocal_count[0],
        latency_cycles=stages + 1,
        stage_depths=stage_depths,
    )


def _stage_depths(
    levels: dict[str, int], stage_of: dict[str, int], stages: int, bucket: int
) -> tuple[int, ...]:
    depths = [0] * stages
    for name, lvl in levels.items():
        stage = stage_of[name]
        within = lvl - stage * bucket + 1
        depths[stage] = max(depths[stage], within)
    return tuple(depths)
