"""E11 -- Section 9: the summary decomposition.

"From our analysis the two most significant factors are pipelining and
process variation ... these two factors alone account for all except a
factor of about 2 to 3x.  The use of dynamic-logic families is a third
significant influence resulting in about 1.5x.  Adding this factor to
pipelining and process variation accounts for all but a factor of about
1.6x."

Checked both on the paper's own numbers and on the measured end-to-end
gap decomposition from the flows.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.core import FactorModel, analyze_gap, overstatement_test, tornado_table
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    run_asic_flow,
    run_custom_flow,
)

BITS = 8


def _measure():
    asic = run_asic_flow(
        AsicFlowOptions(workload="cpu", bits=BITS, sizing_moves=20)
    )
    custom = run_custom_flow(
        CustomFlowOptions(
            workload="cpu_macro", bits=BITS, target_cycle_fo4=14.0,
            sizing_moves=30,
        )
    )
    return analyze_gap(asic, custom)


def test_e11_summary(benchmark):
    measured = run_once(benchmark, _measure)
    model = FactorModel()

    top_two = model.residual_after(["microarchitecture", "process_variation"])
    top_three = model.residual_after(
        ["microarchitecture", "process_variation", "dynamic_logic"]
    )

    # Measured: remove the depth factor (pipelining/logic) and the
    # silicon factors (quoting x technology access) from the total.
    silicon = measured.quoting_factor * measured.technology_factor
    measured_residual = measured.total_ratio / (
        measured.cycle_depth_factor * silicon
    )

    rows = [
        row("pipelining+variation residual (paper)", "2-3x", top_two,
            2.0, 3.0),
        row("+ dynamic logic residual (paper)", "~1.6x", top_three,
            1.5, 1.7),
        row("ranked #1 factor", "pipelining (4.0x)",
            model.ranked()[0].max_contribution, 4.0, 4.0),
        row("ranked #2 factor", "variation (1.9x)",
            model.ranked()[1].max_contribution, 1.9, 1.9),
        row("measured total gap (naive ASIC)", "6-18x",
            measured.total_ratio, 5.0, 18.0),
        row("measured: depth x silicon explain it", "residual ~1x",
            measured_residual, 0.95, 1.05),
        row("measured silicon factor", "<= 1.9x x access", silicon,
            1.6, 2.4),
        row("floorplanning+sizing log share", "'probably overstated'",
            100 * overstatement_test(), 5.0, 25.0, fmt="{:.1f}%"),
    ]
    print()
    print("measured decomposition:")
    print(measured.table())
    print()
    print("factor sensitivity (Section 9's ranking):")
    print(tornado_table())

    report("E11 Summary decomposition (Section 9)", rows)
    for entry in rows:
        assert entry.ok, entry
