"""Deterministic per-task retry policy for fault-tolerant sweeps.

The sweep supervisor (:mod:`repro.par.sweep`) consults one
:class:`RetryPolicy` per sweep: how many attempts a task gets, how long
to back off between them, how long a single attempt may run before the
worker is presumed wedged and killed, and whether a task that exhausts
its attempts is *quarantined* (the sweep completes and the task's slot
in the ordered results holds a structured :class:`TaskFailure`) or
aborts the sweep.

Everything here is deterministic by construction:

* the backoff schedule is a pure function of the attempt number
  (:meth:`RetryPolicy.delay_s`) -- no jitter, so two runs of the same
  failing sweep retry on the same schedule;
* :func:`attempt_seed` derives per-attempt RNG seeds from a task's base
  seed with :class:`numpy.random.SeedSequence` spawning, and attempt 0
  *is* the base seed -- a task that succeeds first try is bit-identical
  to a run with retries disabled, and a retried task re-runs with the
  same inputs unless it explicitly opts into attempt-aware seeding via
  :func:`repro.par.sweep.current_attempt`.

A :class:`TaskFailure` is the quarantine record: picklable, JSON-ready,
and carried both in the sweep's ordered results (placeholder at the
failed task's index) and in the sweep's run-ledger record, so
``repro-gap runs show`` supports post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class RetryError(ValueError):
    """Raised for invalid retry-policy configuration."""


#: Failure kinds a :class:`TaskFailure` can carry, by recovery path:
#: ``error``   -- the task function raised in a healthy worker;
#: ``crash``   -- the worker process died while running the task;
#: ``hang``    -- the task exceeded the per-task timeout and its worker
#:                was killed;
#: ``stall``   -- the stall detector flagged the worker silent and the
#:                supervisor escalated to a retry;
#: ``corrupt`` -- the worker's result could not be unpickled.
FAILURE_KINDS = ("error", "crash", "hang", "stall", "corrupt")


@dataclass(frozen=True)
class RetryPolicy:
    """How the sweep supervisor handles a failing task.

    Attributes:
        max_attempts: total tries a task gets (1 = no retries).
        backoff_s: delay before the first retry; 0 retries immediately.
        backoff_factor: multiplier applied per further retry
            (exponential backoff, deterministic -- no jitter).
        timeout_s: per-task wall-clock budget; a pool task running
            longer has its worker killed and counts the attempt as a
            ``hang``.  None disables the timeout.  Serial sweeps cannot
            preempt a running task, so the timeout only applies under
            ``workers > 1``.
        quarantine: when attempts are exhausted, True records a
            :class:`TaskFailure` placeholder and lets the sweep finish;
            False re-raises and aborts the sweep.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RetryError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise RetryError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise RetryError("backoff_factor must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise RetryError("timeout_s must be positive (or None)")

    def delay_s(self, attempt: int) -> float:
        """Backoff before dispatching ``attempt`` (1-based retries).

        Attempt 0 is the first try and never waits; attempt 1 waits
        ``backoff_s``, attempt 2 ``backoff_s * backoff_factor``, and so
        on.  Pure function of the attempt number: retry schedules are
        reproducible.
        """
        if attempt <= 0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries used up the budget."""
        return attempts >= self.max_attempts


def attempt_seed(task_seed: int, attempt: int) -> int:
    """Deterministic RNG seed for one (task, attempt) pair.

    Attempt 0 returns ``task_seed`` unchanged, so retry-aware callers
    are bit-identical to retry-free runs when nothing fails.  Later
    attempts spawn statistically independent
    :class:`numpy.random.SeedSequence` children of the task seed: the
    schedule depends only on ``(task_seed, attempt)``, never on worker
    count or timing.
    """
    if attempt < 0:
        raise RetryError("attempt must be non-negative")
    if attempt == 0:
        return int(task_seed)
    children = np.random.SeedSequence(task_seed).spawn(attempt)
    return int(children[attempt - 1].generate_state(2, np.uint64)[0])


@dataclass(frozen=True)
class TaskFailure:
    """Structured placeholder for a task that exhausted its retries.

    Occupies the failed task's slot in the sweep's ordered results (so
    indices still line up with the task list) and is persisted in the
    sweep's run-ledger record.

    Attributes:
        index: the task's position in the sweep's task list.
        label: the sweep label the task ran under.
        kind: final failure class, one of :data:`FAILURE_KINDS`.
        error: human-readable description of the last failure.
        attempts: attempts consumed before quarantine.
        reports: structured context (e.g. stall reports) from the
            failing attempts, newest last.
    """

    index: int
    label: str
    kind: str
    error: str
    attempts: int
    reports: tuple = field(default=())

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "reports": [dict(r) for r in self.reports],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskFailure":
        return cls(
            index=int(payload.get("index", -1)),
            label=str(payload.get("label", "")),
            kind=str(payload.get("kind", "error")),
            error=str(payload.get("error", "")),
            attempts=int(payload.get("attempts", 0)),
            reports=tuple(payload.get("reports") or ()),
        )

    def __str__(self) -> str:
        return (f"task {self.index} quarantined after {self.attempts} "
                f"attempt(s) [{self.kind}]: {self.error}")


def is_task_failure(value: object) -> bool:
    """Whether a sweep result slot holds a quarantine placeholder."""
    return isinstance(value, TaskFailure)
