"""Monte Carlo sampling of chip speeds under process variation.

Produces the speed *distribution* Section 8 reasons about: every sampled
die gets a delay factor composed of the global variance components plus
the max of many intra-die path draws, and the resulting frequency
population feeds the binning and quoting models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.variation.components import VariationComponents, VariationError


@dataclass(frozen=True)
class SpeedDistribution:
    """A sampled population of chip clock frequencies.

    Attributes:
        frequencies_mhz: per-die maximum working frequency, sorted
            ascending.
        nominal_mhz: frequency of a variation-free die.
    """

    frequencies_mhz: np.ndarray
    nominal_mhz: float

    def __post_init__(self) -> None:
        if len(self.frequencies_mhz) == 0:
            raise VariationError("empty distribution")
        if not np.all(np.isfinite(self.frequencies_mhz)):
            raise VariationError("distribution contains non-finite "
                                 "frequencies")

    @property
    def count(self) -> int:
        return len(self.frequencies_mhz)

    def percentile(self, pct: float) -> float:
        """Frequency at a population percentile (0 = slowest die)."""
        if not 0.0 <= pct <= 100.0:
            raise VariationError("percentile must be within [0, 100]")
        return float(np.percentile(self.frequencies_mhz, pct))

    @property
    def median_mhz(self) -> float:
        return self.percentile(50.0)

    @property
    def spread(self) -> float:
        """p99 over p1 frequency ratio -- the shipped-bin spread."""
        return self.percentile(99.0) / self.percentile(1.0)

    def yield_at(self, frequency_mhz: float) -> float:
        """Fraction of dies that work at a given frequency."""
        if frequency_mhz <= 0:
            raise VariationError("frequency must be positive")
        return float(np.mean(self.frequencies_mhz >= frequency_mhz))

    def filtered(
        self,
        min_mhz: float | None = None,
        max_mhz: float | None = None,
    ) -> "SpeedDistribution":
        """Sub-population inside a frequency window.

        Guards the percentile math downstream: a filter that removes
        every sample raises a typed error here instead of letting
        ``np.percentile`` produce NaN from an empty array later.

        Raises:
            VariationError: if no samples survive the filter.
        """
        freqs = self.frequencies_mhz
        if min_mhz is not None:
            freqs = freqs[freqs >= min_mhz]
        if max_mhz is not None:
            freqs = freqs[freqs <= max_mhz]
        if len(freqs) == 0:
            raise VariationError(
                f"no samples remain after filtering to "
                f"[{min_mhz}, {max_mhz}] MHz"
            )
        return SpeedDistribution(
            frequencies_mhz=freqs, nominal_mhz=self.nominal_mhz
        )


def sample_chip_speeds(
    nominal_mhz: float,
    components: VariationComponents,
    count: int = 20000,
    seed: int = 1,
) -> SpeedDistribution:
    """Sample a die population.

    Per die: ``delay = (1 + N(0, s_global)) * (1 + max_k N(0, s_intra))``
    where the max runs over the die's independent near-critical paths --
    intra-die variation can only slow a chip down, because *some* path
    always loses the lottery.

    Args:
        nominal_mhz: variation-free design frequency.
        components: variance components.
        count: dies to sample.
        seed: RNG seed (deterministic population).
    """
    if not (nominal_mhz > 0) or not math.isfinite(nominal_mhz):
        raise VariationError("nominal frequency must be positive and "
                             "finite")
    if count < 1:
        raise VariationError("need at least one die")
    profiling = obs.enabled()
    start_s = obs.MONOTONIC() if profiling else 0.0
    rng = np.random.default_rng(seed)
    global_shift = rng.normal(0.0, components.chip_level_sigma, size=count)
    intra = rng.normal(
        0.0, components.intra_die, size=(count, components.critical_paths)
    )
    intra_penalty = np.maximum(intra.max(axis=1), 0.0)
    delay_factor = (1.0 + global_shift) * (1.0 + intra_penalty)
    delay_factor = np.clip(delay_factor, 0.5, 2.0)
    freqs = np.sort(nominal_mhz / delay_factor)
    if profiling:
        elapsed_s = max(obs.MONOTONIC() - start_s, 1e-9)
        obs.count("variation.montecarlo.samples", count)
        obs.observe("variation.montecarlo.samples_per_sec",
                    count / elapsed_s)
    return SpeedDistribution(frequencies_mhz=freqs, nominal_mhz=nominal_mhz)


def maturity_trend(
    nominal_mhz: float,
    components: VariationComponents,
    quarters: int = 8,
    sigma_decay_per_quarter: float = 0.92,
    speed_gain_per_quarter: float = 1.02,
    count: int = 8000,
    seed: int = 7,
) -> list[SpeedDistribution]:
    """Model a process maturing over time.

    Each quarter the variance components shrink and the nominal speed
    creeps up (process tweaks, optical shrinks -- Section 8.1.1's Intel
    0.25 um example gained 18% from a 5% shrink mid-generation).
    """
    if quarters < 1:
        raise VariationError("need at least one quarter")
    out = []
    current = components
    nominal = nominal_mhz
    for quarter in range(quarters):
        out.append(
            sample_chip_speeds(nominal, current, count=count,
                               seed=seed + quarter)
        )
        current = current.scaled(sigma_decay_per_quarter)
        nominal *= speed_gain_per_quarter
    return out
