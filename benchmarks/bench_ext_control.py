"""Extension bench -- Section 4.1's "What's the problem?" for control logic.

"Many designs, such as bus interfaces, have a tight interaction with
their environment in which each execution cycle depends on new primary
inputs ... it is not clear how an ASIC may be reorganized to allow
pipelining.  Simply increasing the clock speed by adding latches would
only increase latency."

Measured: a synthesised bus-interface FSM's cycle time is pinned by its
state-feedback cone (retiming cannot beat the cycle bound and the
pipeliner rightly refuses), while the same-size parallel datapath
pipelines to a multiple of its base speed.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import ripple_carry_adder
from repro.pipeline import (
    PipelineError,
    make_retiming_graph,
    opt_period,
    pipeline_module,
)
from repro.sta import asic_clock, fo4_depth, solve_min_period
from repro.synth.fsm import bus_interface_spec, synthesize_fsm
from repro.tech import CMOS250_ASIC


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(40.0 * CMOS250_ASIC.fo4_delay_ps)

    fsm = synthesize_fsm(bus_interface_spec(), library)
    fsm_timing = solve_min_period(fsm, library, clock)

    pipeliner_refused = False
    try:
        pipeline_module(fsm, library, stages=2)
    except PipelineError:
        pipeliner_refused = True

    # Retiming abstraction of the FSM: one register on the feedback loop.
    ns_delay = fsm_timing.logic_delay_ps
    graph = make_retiming_graph(
        {"ns": ns_delay, "reg": 0.0},
        [("reg", "ns", 0), ("ns", "reg", 1)],
    )
    retimed = opt_period(graph)

    # The contrast: a parallel datapath of comparable size pipelines.
    adder = ripple_carry_adder(10, library)
    base = solve_min_period(
        pipeline_module(ripple_carry_adder(10, library), library, 1).module,
        library, clock,
    ).min_period_ps
    piped = solve_min_period(
        pipeline_module(adder, library, 4).module, library, clock
    ).min_period_ps
    return fsm, fsm_timing, pipeliner_refused, retimed, ns_delay, base / piped


def test_ext_control_logic(benchmark):
    (fsm, fsm_timing, refused, retimed, ns_delay,
     datapath_speedup) = run_once(benchmark, _measure)

    rows = [
        row("bus FSM synthesised cycle", "control-logic class",
            fo4_depth(fsm_timing, CMOS250_ASIC), 5.0, 30.0,
            fmt="{:.1f} FO4"),
        row("pipeliner refuses sequential feedback", "cannot reorganize",
            1.0 if refused else 0.0, 1.0, 1.0, fmt="{:.0f}"),
        row("retiming gain on the feedback loop", "none (cycle bound)",
            retimed.original_period / retimed.period, 1.0, 1.001),
        row("same-size parallel datapath, 4 stages", "pipelines fine",
            datapath_speedup, 2.0, 4.6),
    ]
    print()
    print(f"FSM gates: {fsm.instance_count()}, next-state cone "
          f"{ns_delay:.0f} ps; retiming bound {retimed.period:.0f} ps")
    report("EXT  Control logic cannot pipeline (Section 4.1)", rows)
    for entry in rows:
        assert entry.ok, entry
