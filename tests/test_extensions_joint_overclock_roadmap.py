"""Tests for joint gate+wire sizing, down-binning, and the gap roadmap."""

import pytest

from repro.core import (
    FactorError,
    asymptotic_gap,
    project_gap,
    roadmap_table,
)
from repro.sizing import (
    SizingError,
    joint_size,
    path_delay_ps,
    sequential_size,
)
from repro.tech import CMOS250_ASIC
from repro.variation import (
    NEW_PROCESS,
    VariationError,
    overclocking_headroom,
    sample_chip_speeds,
    ship_against_demand,
)


class TestJointSizing:
    def test_joint_beats_sequential(self):
        # The point of reference [6]: co-optimisation wins.
        for length in (2000.0, 5000.0, 10000.0):
            joint = joint_size(CMOS250_ASIC, length, 20.0)
            seq = sequential_size(CMOS250_ASIC, length, 20.0)
            assert joint.delay_ps <= seq.delay_ps + 1e-9, length

    def test_longer_wires_get_wider(self):
        short = joint_size(CMOS250_ASIC, 500.0, 10.0)
        long = joint_size(CMOS250_ASIC, 10000.0, 10.0)
        assert long.wire_width_um >= short.wire_width_um
        assert long.gate_size > short.gate_size

    def test_area_weight_trades_speed_for_area(self):
        cheap = joint_size(CMOS250_ASIC, 5000.0, 20.0, area_weight=5.0)
        fast = joint_size(CMOS250_ASIC, 5000.0, 20.0, area_weight=0.05)
        assert fast.delay_ps < cheap.delay_ps
        assert fast.area_cost > cheap.area_cost

    def test_convergence(self):
        result = joint_size(CMOS250_ASIC, 5000.0, 20.0)
        assert result.iterations <= 25
        # Perturbing either coordinate must not improve the delay+area
        # objective (local optimality of the fixed point).
        lam = 0.5
        base = result.delay_ps + lam * (
            result.gate_size
            + (result.wire_width_um - CMOS250_ASIC.interconnect.min_width_um)
            * 5000.0 / 1000.0
        )
        for bump in (0.9, 1.1):
            perturbed = path_delay_ps(
                CMOS250_ASIC, result.gate_size * bump,
                result.wire_width_um, 5000.0, 20.0,
            ) + lam * (
                result.gate_size * bump
                + (result.wire_width_um
                   - CMOS250_ASIC.interconnect.min_width_um) * 5.0
            )
            assert perturbed >= base - 0.5

    def test_validation(self):
        with pytest.raises(SizingError):
            joint_size(CMOS250_ASIC, -1.0, 20.0)
        with pytest.raises(SizingError):
            joint_size(CMOS250_ASIC, 100.0, 20.0, area_weight=0.0)
        with pytest.raises(SizingError):
            path_delay_ps(CMOS250_ASIC, 0.0, 0.32, 100.0, 1.0)


class TestOverclocking:
    @pytest.fixture(scope="class")
    def dist(self):
        return sample_chip_speeds(400.0, NEW_PROCESS, count=10000, seed=9)

    def test_down_binning_under_slow_demand(self, dist):
        edges = [dist.percentile(5), dist.percentile(40), dist.percentile(80)]
        outcome = ship_against_demand(dist, edges, [0.6, 0.25, 0.1])
        # Heavy demand for the slow grade forces fast dies downward.
        assert outcome.down_binned_fraction > 0.05
        assert outcome.mean_headroom > 1.0
        assert outcome.p90_headroom > outcome.mean_headroom

    def test_natural_demand_no_down_binning(self, dist):
        edges = [dist.percentile(5), dist.percentile(40), dist.percentile(80)]
        # Demand matching natural supply: ~35% / 40% / 20%.
        outcome = ship_against_demand(dist, edges, [0.34, 0.39, 0.19])
        assert outcome.down_binned_fraction < 0.06

    def test_part_accounting(self, dist):
        edges = [dist.percentile(10), dist.percentile(60)]
        outcome = ship_against_demand(dist, edges, [0.5, 0.3])
        total = sum(outcome.parts_per_bin.values())
        sellable = int(
            (dist.frequencies_mhz >= edges[0]).sum()
        )
        assert total == sellable

    def test_overclocking_headroom(self, dist):
        # Everything sold at a conservative grade: median die has margin.
        headroom = overclocking_headroom(dist, dist.percentile(5))
        assert 1.05 < headroom < 1.5

    def test_validation(self, dist):
        with pytest.raises(VariationError):
            ship_against_demand(dist, [], [])
        with pytest.raises(VariationError):
            ship_against_demand(dist, [300.0], [0.5, 0.5])
        with pytest.raises(VariationError):
            ship_against_demand(dist, [300.0, 200.0], [0.5, 0.4])
        with pytest.raises(VariationError):
            overclocking_headroom(dist, -1.0)
        with pytest.raises(VariationError):
            overclocking_headroom(dist, 10 * dist.percentile(99.9))


class TestRoadmap:
    def test_gap_shrinks_but_persists(self):
        points = project_gap(generations=4, initial_gap=8.0)
        gaps = [p.gap for p in points]
        assert gaps == sorted(gaps, reverse=True)
        # Section 9 pessimism: still a large gap after four generations.
        assert gaps[-1] > 3.0
        assert gaps[-1] < gaps[0]

    def test_asymptote_is_custom_only_share(self):
        # Pipelining + dynamic logic survive perfect tools.
        asymptote = asymptotic_gap(8.0)
        assert 3.0 < asymptote < 5.0
        deep_points = project_gap(
            generations=30, initial_gap=8.0,
            tool_recovery_per_generation=0.9,
            partial_recovery_per_generation=0.9,
        )
        assert deep_points[-1].gap == pytest.approx(asymptote, rel=0.02)

    def test_recovered_factor_accumulates(self):
        points = project_gap(generations=3)
        recovered = [p.recovered for p in points]
        assert recovered == sorted(recovered)
        # Consistency: gap x recovered == initial gap (log bookkeeping).
        for point in points:
            assert point.gap * point.recovered == pytest.approx(
                points[0].gap, rel=1e-6
            )

    def test_table_renders(self):
        text = roadmap_table(project_gap(2))
        assert "generation" in text
        assert "1.00x" in text

    def test_validation(self):
        with pytest.raises(FactorError):
            project_gap(initial_gap=0.9)
        with pytest.raises(FactorError):
            project_gap(tool_recovery_per_generation=1.5)
