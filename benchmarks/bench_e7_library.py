"""E7 -- Section 6.1: library richness and discrete sizing.

Claims measured on real mapped netlists:

* "a cell library with only two drive strengths may be 25% slower than an
  ASIC library with a rich selection of drive strengths ... as well as
  dual polarities" -- poor vs rich mapping + sizing;
* "with a rich library of sizes the performance impact of discrete sizes
  may be 2% to 7% or less" -- continuous sizing snapped to a rich ladder;
* the drive-count sweep ablation from DESIGN.md.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import (
    LibrarySpec,
    build_library,
    custom_library,
    poor_asic_library,
    rich_asic_library,
)
from repro.datapath import alu
from repro.sizing import (
    discretization_penalty,
    geometric_drive_ladder,
    size_for_speed,
    snap_to_library,
    worst_case_snap_penalty,
)
from repro.sta import asic_clock, register_boundaries, solve_min_period
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

BITS = 8


def _implement(library, moves=25):
    module = register_boundaries(
        alu(BITS, library, fast_adder=False), library
    )
    clock = asic_clock(60.0 * library.technology.fo4_delay_ps)
    size_for_speed(module, library, clock, max_moves=moves)
    timing = solve_min_period(module, library, clock)
    return timing.min_period_ps / library.technology.fo4_delay_ps


def _measure():
    poor_fo4 = _implement(poor_asic_library(CMOS250_ASIC))
    rich_fo4 = _implement(rich_asic_library(CMOS250_ASIC))

    # Discrete-vs-continuous on the same (custom) technology.
    custom = custom_library(CMOS250_CUSTOM)
    module = register_boundaries(alu(BITS, custom, fast_adder=True), custom)
    clock = asic_clock(30.0 * CMOS250_CUSTOM.fo4_delay_ps)
    size_for_speed(module, custom, clock, max_moves=40)
    rich_same_tech = rich_asic_library(CMOS250_CUSTOM)
    penalty = discretization_penalty(module, custom, rich_same_tech, clock)
    return poor_fo4, rich_fo4, penalty


def test_e7_library_richness(benchmark):
    poor_fo4, rich_fo4, penalty = run_once(benchmark, _measure)
    poor_penalty = poor_fo4 / rich_fo4 - 1.0

    rows = [
        row("two-drive single-polarity library", "~25% slower",
            100 * poor_penalty, 8.0, 38.0, fmt="{:.1f}%"),
        row("discrete snap on rich ladder", "2-7% or less",
            100 * max(penalty.penalty_fraction, 0.0), 0.0, 15.0,
            fmt="{:.1f}%"),
        row("analytic worst-case snap, r=1.5 ladder", "2-7% class",
            100 * worst_case_snap_penalty(1.5) / 2, 2.0, 12.0,
            fmt="{:.1f}%"),
    ]

    print()
    print("ablation: drive-count sweep (same ALU, sized, FO4 per cycle)")
    for count in (2, 3, 4, 6, 8, 12):
        ladder = geometric_drive_ladder(count, 1.0, 16.0)
        library = build_library(
            CMOS250_ASIC,
            LibrarySpec(name=f"sweep{count}", drives=ladder, guard_band=1.05),
        )
        fo4 = _implement(library, moves=15)
        print(f"  {count:>2d} drives/function: {fo4:6.1f} FO4")

    report("E7  Library richness and discrete sizing (Section 6.1)", rows)
    for entry in rows:
        assert entry.ok, entry
    assert poor_fo4 > rich_fo4
