"""Multiplier generators: array and Wallace-tree.

Section 7.2 lists multipliers among the candidate custom macro cells.
The array multiplier is the regular O(n) -depth structure RTL synthesis
tends to produce; the Wallace tree compresses partial products in
O(log n) carry-save levels followed by one fast carry-propagate adder,
which is the custom-macro shape.

Ports: ``a0..a{n-1}``, ``b0..b{n-1}``; product ``p0..p{2n-1}``.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def _mult_frame(bits: int, name: str) -> tuple[Module, list[str], list[str]]:
    if bits < 2:
        raise SynthesisError("multiplier width must be at least 2")
    module = Module(name)
    a = [module.add_input(f"a{i}") for i in range(bits)]
    b = [module.add_input(f"b{i}") for i in range(bits)]
    for i in range(2 * bits):
        module.add_output(f"p{i}")
    return module, a, b


def _partial_products(
    emit: Emitter, a: list[str], b: list[str]
) -> list[list[str]]:
    """Column-indexed AND-array of partial products."""
    bits = len(a)
    columns: list[list[str]] = [[] for _ in range(2 * bits)]
    for i in range(bits):
        for j in range(bits):
            columns[i + j].append(emit.and2(a[i], b[j]))
    return columns


def array_multiplier(
    bits: int, library: CellLibrary, name: str = "amul"
) -> Module:
    """Array multiplier: row-by-row ripple accumulation of partial products.

    Critical path is O(n) full adders -- the slow but regular baseline.
    """
    module, a, b = _mult_frame(bits, name)
    emit = Emitter(module, library)
    columns = _partial_products(emit, a, b)
    # Ripple-accumulate column by column, carrying into the next column.
    for col in range(2 * bits):
        nets = columns[col]
        while len(nets) > 2:
            s, c = emit.full_adder(nets[0], nets[1], nets[2])
            nets = nets[3:] + [s]
            if col + 1 < 2 * bits:
                columns[col + 1].append(c)
        if len(nets) == 2:
            s, c = emit.half_adder(nets[0], nets[1])
            nets = [s]
            if col + 1 < 2 * bits:
                columns[col + 1].append(c)
        if nets:
            emit.buf(nets[0], out=f"p{col}")
        else:
            ninput = emit.inv(a[0])
            zero = emit.and2(a[0], ninput)
            emit.buf(zero, out=f"p{col}")
        columns[col] = nets
    return module


def wallace_multiplier(
    bits: int, library: CellLibrary, name: str = "wmul"
) -> Module:
    """Wallace-tree multiplier: 3:2 compression plus Kogge-Stone final add.

    All columns compress in parallel per level, so the reduction takes
    O(log n) full-adder levels; the two remaining rows are summed with a
    logarithmic prefix adder.
    """
    module, a, b = _mult_frame(bits, name)
    emit = Emitter(module, library)
    columns = _partial_products(emit, a, b)
    width = 2 * bits

    # Wallace reduction: every level, each column feeds groups of three
    # bits into full adders (pairs into half adders) simultaneously.
    while any(len(col) > 2 for col in columns):
        next_columns: list[list[str]] = [[] for _ in range(width)]
        for col in range(width):
            nets = columns[col]
            i = 0
            while len(nets) - i >= 3:
                s, c = emit.full_adder(nets[i], nets[i + 1], nets[i + 2])
                next_columns[col].append(s)
                if col + 1 < width:
                    next_columns[col + 1].append(c)
                i += 3
            if len(nets) - i == 2 and len(nets) > 2:
                s, c = emit.half_adder(nets[i], nets[i + 1])
                next_columns[col].append(s)
                if col + 1 < width:
                    next_columns[col + 1].append(c)
                i += 2
            next_columns[col].extend(nets[i:])
        columns = next_columns

    # Final carry-propagate addition of the two remaining rows with an
    # inline Kogge-Stone prefix network, keeping the whole multiplier at
    # logarithmic depth.
    ninput = emit.inv(a[0])
    zero = emit.and2(a[0], ninput)
    xs = []
    ys = []
    for col in range(width):
        nets = columns[col]
        xs.append(nets[0] if len(nets) > 0 else zero)
        ys.append(nets[1] if len(nets) > 1 else zero)
    gen = [emit.and2(xs[i], ys[i]) for i in range(width)]
    prop = [emit.xor2(xs[i], ys[i]) for i in range(width)]
    sum_p = list(prop)
    dist = 1
    while dist < width:
        new_gen = list(gen)
        new_prop = list(prop)
        for i in range(dist, width):
            new_gen[i] = emit.or2(gen[i], emit.and2(prop[i], gen[i - dist]))
            new_prop[i] = emit.and2(prop[i], prop[i - dist])
        gen, prop = new_gen, new_prop
        dist *= 2
    emit.buf(sum_p[0], out="p0")
    for col in range(1, width):
        emit.xor2(sum_p[col], gen[col - 1], out=f"p{col}")
    return module


def simulate_multiplier(
    module: Module, library: CellLibrary, bits: int, a: int, b: int
) -> int:
    """Drive a multiplier netlist with integers; returns the product."""
    from repro.synth.simulate import simulate_combinational

    if min(a, b) < 0 or max(a, b) >= (1 << bits):
        raise SynthesisError(f"operands out of range for {bits} bits")
    vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
    vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
    out = simulate_combinational(module, library, vec)
    return sum((1 << i) for i in range(2 * bits) if out[f"p{i}"])
