"""Fingerprint-keyed stage result cache for the flow engine.

Sweep points that share a stage prefix -- same netlist and synthesis
options, different sizing/variation knobs -- redo exactly the same map,
placement and clock-tree work.  The engine snapshots the declared
outputs of every cacheable stage under its input fingerprint (see
:func:`repro.flows.engine.stage_fingerprint`), so the shared prefix is
computed once and replayed from the cache everywhere else.

Entries are stored as pickle blobs and unpickled per hit, so every hit
hands out a *fresh* object graph: downstream stages mutate netlists in
place (buffering, sizing), and handing the same module to two sweep
points would corrupt both.  The in-memory side is a bounded LRU; an
optional directory spills the same blobs to disk, which is how pool
workers (separate processes) share a cache within a sweep, and how
``--resume`` sessions reuse work across CLI invocations.

Only trust cache directories you wrote: blobs are pickles, and
unpickling executes the payload's constructors.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Any

#: In-memory entry bound; oldest entries are evicted past it.
MAX_ENTRIES = 128

#: Suffix of on-disk cache blobs.
BLOB_SUFFIX = ".stage.pkl"


class StageCache:
    """Bounded LRU of pickled stage outputs, optionally disk-backed.

    Args:
        directory: spill directory shared across processes (None = memory
            only).  Created on first write.
        max_entries: in-memory LRU bound.
    """

    def __init__(self, directory: str | None = None,
                 max_entries: int = MAX_ENTRIES) -> None:
        self.directory = directory
        self.max_entries = max_entries
        self._blobs: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, fingerprint + BLOB_SUFFIX)

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """Fresh copy of the outputs stored under a fingerprint, or None."""
        blob = self._blobs.get(fingerprint)
        if blob is not None:
            self._blobs.move_to_end(fingerprint)
        elif self.directory is not None:
            try:
                with open(self._path(fingerprint), "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None
        if blob is None:
            self.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:  # corrupt blob: treat as a miss, drop it
            self._blobs.pop(fingerprint, None)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, fingerprint: str, payload: dict[str, Any]) -> None:
        """Snapshot stage outputs under a fingerprint (best effort)."""
        try:
            blob = pickle.dumps(payload)
        except Exception:  # unpicklable artifact: simply not cacheable
            return
        self._blobs[fingerprint] = blob
        self._blobs.move_to_end(fingerprint)
        while len(self._blobs) > self.max_entries:
            self._blobs.popitem(last=False)
        self.puts += 1
        if self.directory is not None:
            self._spill(fingerprint, blob)

    def _spill(self, fingerprint: str, blob: bytes) -> None:
        """Atomic disk write; concurrent writers race idempotently."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=fingerprint + ".", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, self._path(fingerprint))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # disk spill is an optimisation, never a failure

    def clear(self) -> None:
        """Drop in-memory entries (disk blobs are left alone)."""
        self._blobs.clear()

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "puts": float(self.puts),
            "hit_rate": self.hits / total if total else 0.0,
            "size": float(len(self._blobs)),
        }


_enabled = True
_cache = StageCache()


def get_cache() -> StageCache:
    """The process-global stage cache the engine uses by default."""
    return _cache


def set_enabled(flag: bool) -> None:
    """Switch stage caching on/off process-wide."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


def configure(directory: str | None) -> None:
    """Point the global cache at a spill directory (None = memory only)."""
    _cache.directory = directory


def reset() -> None:
    """Drop entries and zero the counters (directory setting survives)."""
    _cache.clear()
    _cache.hits = 0
    _cache.misses = 0
    _cache.puts = 0


def stats() -> dict[str, float]:
    """Hit/miss/size snapshot of the global cache."""
    return _cache.stats()


def publish() -> None:
    """Export the counters as ``flows.cache.*`` gauges through repro.obs."""
    from repro import obs

    for field, value in stats().items():
        obs.gauge(f"flows.cache.{field}", float(value))
