"""Deep profiling: CPU/memory attribution, flame graphs, perf budgets.

The rest of the observability stack answers *how long* a run took; this
module answers *where* the time and memory went.  Four pieces share the
file because they share one contract -- everything is opt-in, costs one
flag check when off, and never touches fingerprints:

* a module switch (mirroring ``obs.instrument``) plus ``stage_probe()``,
  the flow engine's hook that measures per-stage CPU seconds
  (``time.process_time``) and peak memory.  Memory attribution has two
  modes: ``"sampled"`` (default) polls the process RSS from a
  background thread -- a few percent overhead, peak resident KiB per
  stage -- while ``"trace"`` uses ``tracemalloc`` for exact traced-heap
  peaks at the cost of instrumenting every allocation (about an order
  of magnitude on allocation-heavy stages);
* self-time analysis over aggregated span entries: a hotspot rollup
  (exclusive milliseconds per span label) and the critical path of a
  run (the deepest-cost chain of the span tree);
* flame-graph export in Brendan Gregg's collapsed-stack format, derived
  from spans or from a ``cProfile`` capture, so any run opens in
  speedscope/inferno alongside the Chrome trace;
* perf budgets: ``PERF_BUDGETS.toml`` ceilings checked against
  ``BENCH_paperbench.json`` numbers, reported through the same
  ``Finding``/``RegressionReport`` machinery that gates regressions.

Profiling configuration lives here, *not* in ``FlowOptions``, so stage
fingerprints, goldens and sweep-resume ledgers are untouched whether
profiling is on or off.
"""

from __future__ import annotations

import re
import threading
import time
import tracemalloc
from dataclasses import dataclass

from repro.obs.ledger import _atomic_write_text
from repro.obs.regress import Finding, RegressionReport
from repro.obs.render import PATH_SEP
from repro.obs.trace import ObsError, Span

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.10 CI only
    _toml = None

#: Budget sections recognised in PERF_BUDGETS.toml, by unit.
BUDGET_SECTIONS = {"wall": "s", "cpu": "s", "mem": "kb"}

#: Memory-attribution modes: cheap sampled RSS vs exact traced heap.
MEM_MODES = ("sampled", "trace")

# ---------------------------------------------------------------------------
# Module switch (same shape as obs.instrument: off = one flag check).

_cpu = False
_mem: str | None = None  # None (off), "sampled" or "trace"


def _coerce_mem(mem) -> str | None:
    if mem is False:
        return None
    if mem is True:
        return "sampled"
    if mem in MEM_MODES:
        return str(mem)
    raise ObsError(f"unknown memory-profiling mode {mem!r} "
                   f"(expected one of {list(MEM_MODES)})")


def configure(*, cpu: bool | None = None,
              mem: bool | str | None = None) -> None:
    """Turn CPU and/or peak-memory attribution on or off.

    ``None`` leaves that dimension unchanged, so callers can flip one
    axis without knowing the other.  ``mem`` accepts ``True`` (alias
    for ``"sampled"``: peak process RSS polled from a background
    thread, a few percent overhead), ``"trace"`` (exact ``tracemalloc``
    traced-heap peaks, roughly 10x on allocation-heavy stages) or
    ``False`` (off).
    """
    global _cpu, _mem
    if cpu is not None:
        _cpu = bool(cpu)
    if mem is not None:
        _mem = _coerce_mem(mem)


def enabled() -> bool:
    return _cpu or _mem is not None


def cpu_enabled() -> bool:
    return _cpu


def mem_enabled() -> bool:
    return _mem is not None


def mem_mode() -> str | None:
    """The active memory mode: ``"sampled"``, ``"trace"`` or ``None``."""
    return _mem


def snapshot() -> tuple[bool, str | None]:
    """Picklable config for shipping to ``par.sweep`` workers."""
    return (_cpu, _mem)


def apply(config: tuple[bool, str | None] | None) -> None:
    """Adopt a parent's :func:`snapshot` inside a worker process."""
    if config is not None:
        configure(cpu=config[0],
                  mem=config[1] if config[1] is not None else False)


def reset_state() -> None:
    global _cpu, _mem
    _cpu = False
    _mem = None


# ---------------------------------------------------------------------------
# Per-stage probe (the flow engine's hook).


class _NoopProbe:
    """Zero-cost stand-in when profiling is off."""

    __slots__ = ()
    active = False
    cpu_s: float | None = None
    peak_mem_kb: float | None = None

    def __enter__(self) -> "_NoopProbe":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def span_attrs(self) -> dict:
        return {}


NOOP_PROBE = _NoopProbe()


def _rss_kb() -> float | None:
    """Current process resident set in KiB, or None off-Linux."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_KB
    except (OSError, IndexError, ValueError):
        return None


try:
    import os as _os
    _PAGE_KB = _os.sysconf("SC_PAGE_SIZE") / 1024.0
except (ImportError, AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_KB = 4.0
#: Whether sampled RSS attribution can work here at all.
_RSS_AVAILABLE = _rss_kb() is not None


class _RssSampler(threading.Thread):
    """Daemon thread polling the process RSS while a stage runs."""

    def __init__(self, interval_s: float = 0.001):
        super().__init__(name="repro-rss-sampler", daemon=True)
        self._interval_s = interval_s
        self._done = threading.Event()
        self.peak_kb = 0.0

    def run(self) -> None:
        while not self._done.wait(self._interval_s):
            rss = _rss_kb()
            if rss is not None and rss > self.peak_kb:
                self.peak_kb = rss

    def stop(self) -> float:
        self._done.set()
        self.join(timeout=1.0)
        return self.peak_kb


class StageProbe:
    """Measures one stage: CPU seconds and a peak-memory figure.

    The memory figure depends on the mode: ``"sampled"`` reports the
    stage's peak process RSS in KiB (polled at ~1 kHz, plus synchronous
    reads at entry and exit so sub-millisecond stages still get a
    number); ``"trace"`` reports the exact ``tracemalloc`` traced-heap
    peak.  ``tracemalloc`` does not nest, so in trace mode the probe
    only starts tracing if nobody else is (and only then stops it);
    when tracing is already on -- an outer probe, a test harness -- it
    resets the peak counter and reads the high-water mark accumulated
    inside the ``with`` block.  On platforms without ``/proc``,
    sampled mode silently upgrades to trace so the ledger always gets
    a peak when memory attribution was requested.
    """

    __slots__ = ("active", "cpu_s", "peak_mem_kb", "_cpu", "_mem",
                 "_cpu0", "_started_tracing", "_sampler", "_rss0")

    def __init__(self, *, cpu: bool, mem: str | None):
        self.active = True
        self.cpu_s: float | None = None
        self.peak_mem_kb: float | None = None
        self._cpu = cpu
        if mem == "sampled" and not _RSS_AVAILABLE:  # pragma: no cover
            mem = "trace"
        self._mem = mem
        self._cpu0 = 0.0
        self._started_tracing = False
        self._sampler: _RssSampler | None = None
        self._rss0 = 0.0

    def __enter__(self) -> "StageProbe":
        if self._mem == "trace":
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
                self._started_tracing = True
        elif self._mem == "sampled":
            self._rss0 = _rss_kb() or 0.0
            self._sampler = _RssSampler()
            self._sampler.start()
        if self._cpu:
            self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._cpu:
            self.cpu_s = round(time.process_time() - self._cpu0, 6)
        if self._mem == "trace" and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.peak_mem_kb = round(peak / 1024.0, 3)
            if self._started_tracing:
                tracemalloc.stop()
        elif self._sampler is not None:
            peak = self._sampler.stop()
            self._sampler = None
            peak = max(peak, self._rss0, _rss_kb() or 0.0)
            self.peak_mem_kb = round(peak, 3)
        return None

    def span_attrs(self) -> dict:
        attrs = {}
        if self.cpu_s is not None:
            attrs["cpu_s"] = self.cpu_s
        if self.peak_mem_kb is not None:
            attrs["peak_mem_kb"] = self.peak_mem_kb
        return attrs


def stage_probe():
    """The engine's per-stage hook: noop unless profiling is on."""
    if not (_cpu or _mem):
        return NOOP_PROBE
    return StageProbe(cpu=_cpu, mem=_mem)


# ---------------------------------------------------------------------------
# Self-time analysis over aggregated span entries.
#
# Both inputs work: live ``aggregate_spans(tracer.finished())`` output
# and the ``spans`` list persisted in a ledger RunRecord -- they are the
# same shape ({path, name, depth, calls, total_ms, self_ms, ...}).


@dataclass(frozen=True)
class Hotspot:
    """One row of the self-time rollup.

    Attributes:
        name: span label, aggregated across every call path.
        calls: total invocations.
        self_ms: exclusive milliseconds (time not in child spans).
        total_ms: inclusive milliseconds.
        self_pct: share of the run's total self time, 0..100.
    """

    name: str
    calls: int
    self_ms: float
    total_ms: float
    self_pct: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "self_ms": self.self_ms,
            "total_ms": self.total_ms,
            "self_pct": self.self_pct,
        }


def self_time_rollup(entries: list[dict]) -> list[Hotspot]:
    """Exclusive time per span label, hottest first.

    Self time already never double-counts (a parent's excludes its
    children's), so summing it across call paths is exact: the rows
    add up to the run's wall time even with nested, overlapping or
    adopted worker spans in the tree.
    """
    by_name: dict[str, list[float]] = {}
    for entry in entries:
        row = by_name.setdefault(str(entry.get("name", "?")),
                                 [0.0, 0.0, 0.0])
        row[0] += float(entry.get("calls", 0))
        row[1] += float(entry.get("self_ms", 0.0))
        row[2] += float(entry.get("total_ms", 0.0))
    grand_self = sum(row[1] for row in by_name.values())
    hotspots = [
        Hotspot(
            name=name,
            calls=int(row[0]),
            self_ms=round(row[1], 6),
            total_ms=round(row[2], 6),
            self_pct=round(100.0 * row[1] / grand_self, 2)
            if grand_self > 0 else 0.0,
        )
        for name, row in by_name.items()
    ]
    hotspots.sort(key=lambda h: (-h.self_ms, h.name))
    return hotspots


def critical_path(entries: list[dict]) -> list[dict]:
    """The deepest-cost chain: heaviest root, then heaviest child, down.

    Returns the chain of aggregated entries from the most expensive
    root to the leaf reached by always descending into the child call
    path with the largest inclusive time.  This is the run's "critical
    path" in the scheduling sense: the chain a speedup must shorten to
    move the total.
    """
    by_path: dict[tuple, dict] = {}
    children: dict[tuple, list[tuple]] = {}
    for entry in entries:
        path = tuple(str(entry.get("path", "")).split(PATH_SEP))
        by_path[path] = entry
        if len(path) > 1:
            children.setdefault(path[:-1], []).append(path)

    def weight(path: tuple) -> float:
        return float(by_path[path].get("total_ms", 0.0))

    roots = [p for p in by_path if len(p) == 1]
    if not roots:
        return []
    chain = []
    node = max(roots, key=lambda p: (weight(p), p))
    while True:
        chain.append(by_path[node])
        kids = [k for k in children.get(node, ()) if k in by_path]
        if not kids:
            return chain
        node = max(kids, key=lambda p: (weight(p), p))


def render_hotspots(hotspots: list[Hotspot], limit: int = 15) -> str:
    """Self-time hotspot table, hottest label first."""
    if not hotspots:
        return "no spans recorded"
    lines = [f"{'span (by self time)':<44s} {'calls':>6s} "
             f"{'self ms':>10s} {'self %':>7s} {'total ms':>10s}"]
    for spot in hotspots[:limit]:
        lines.append(
            f"{spot.name:<44.44s} {spot.calls:>6d} "
            f"{spot.self_ms:>10.3f} {spot.self_pct:>6.1f}% "
            f"{spot.total_ms:>10.3f}"
        )
    hidden = len(hotspots) - limit
    if hidden > 0:
        lines.append(f"... {hidden} more label(s)")
    return "\n".join(lines)


def render_critical_path(entries: list[dict]) -> str:
    """The critical path as an indented chain with cumulative share."""
    chain = critical_path(entries)
    if not chain:
        return "no spans recorded"
    root_ms = float(chain[0].get("total_ms", 0.0))
    lines = ["critical path (heaviest chain):"]
    for depth, entry in enumerate(chain):
        total_ms = float(entry.get("total_ms", 0.0))
        pct = 100.0 * total_ms / root_ms if root_ms > 0 else 0.0
        lines.append(
            f"  {'  ' * depth}{entry.get('name', '?'):<30.30s} "
            f"{total_ms:>10.3f} ms  {pct:>5.1f}%"
        )
    return "\n".join(lines)


def render_self_report(entries: list[dict], limit: int = 15) -> str:
    """Hotspot table plus the critical path, for ``stats --self``."""
    return "\n".join([
        render_hotspots(self_time_rollup(entries), limit=limit),
        "",
        render_critical_path(entries),
    ])


# ---------------------------------------------------------------------------
# Flame graphs (Brendan Gregg collapsed-stack format).

_FRAME_UNSAFE = re.compile(r"[;\s]+")


def _frame(name: str) -> str:
    """Collapsed-stack frames cannot contain ';' or whitespace."""
    return _FRAME_UNSAFE.sub("_", name) or "?"


def spans_to_collapsed(spans: list[Span]) -> list[str]:
    """Collapsed stacks from finished spans, one line per call path.

    Each line is ``root;child;leaf <self-time-microseconds>``; summing
    a frame's subtree reconstructs its inclusive time, which is exactly
    the flame-graph contract.  Open spans and zero-self-time paths are
    skipped.
    """
    by_index = {span.index: span for span in spans}
    weights: dict[tuple, int] = {}
    for span in spans:
        if span.end_s is None:
            continue
        value = int(round(span.self_s * 1e6))
        if value <= 0:
            continue
        stack = [_frame(span.name)]
        parent = span.parent
        seen = {span.index}
        while parent is not None and parent in by_index:
            if parent in seen:  # defensive: corrupt adoption loop
                break
            seen.add(parent)
            node = by_index[parent]
            stack.append(_frame(node.name))
            parent = node.parent
        key = tuple(reversed(stack))
        weights[key] = weights.get(key, 0) + value
    return [f"{';'.join(stack)} {value}"
            for stack, value in sorted(weights.items())]


def cprofile_to_collapsed(profiler) -> list[str]:
    """Collapsed stacks from a ``cProfile.Profile`` capture.

    cProfile keeps one caller level, not full stacks, so the output is
    caller;callee pairs weighted by the callee's internal time on that
    edge -- shallow but faithful: frame widths still rank the real CPU
    hotspots and the file opens in any flame-graph viewer.
    """
    import pstats

    stats = pstats.Stats(profiler).stats  # noqa: SLF001 - public enough

    def label(func: tuple) -> str:
        filename, lineno, name = func
        if filename.startswith("<") or filename == "~":
            return _frame(name)
        short = filename.rsplit("/", 1)[-1]
        return _frame(f"{short}:{lineno}:{name}")

    weights: dict[tuple, int] = {}
    for func, (_cc, _nc, tt, _ct, callers) in stats.items():
        if callers:
            for caller, (_ccc, _ncc, caller_tt, _cct) in callers.items():
                value = int(round(caller_tt * 1e6))
                if value > 0:
                    key = (label(caller), label(func))
                    weights[key] = weights.get(key, 0) + value
        else:
            value = int(round(tt * 1e6))
            if value > 0:
                key = (label(func),)
                weights[key] = weights.get(key, 0) + value
    return [f"{';'.join(stack)} {value}"
            for stack, value in sorted(weights.items())]


def write_collapsed(lines: list[str], path: str) -> int:
    """Atomically write collapsed stacks; returns the line count."""
    _atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


# ---------------------------------------------------------------------------
# Perf budgets.


def _parse_budget_toml(text: str) -> dict:
    """Minimal TOML subset parser for budget files (3.10 fallback).

    Handles ``[section]`` headers, ``"quoted key" = number`` /
    ``bare_key = number`` assignments, comments and blank lines --
    which is the entire PERF_BUDGETS.toml grammar.
    """
    doc: dict[str, dict] = {}
    section: dict | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = doc.setdefault(line[1:-1].strip(), {})
            continue
        if "=" not in line:
            raise ObsError(f"budget file line {lineno}: expected "
                           f"'key = value', got {line!r}")
        if section is None:
            raise ObsError(f"budget file line {lineno}: assignment "
                           "before any [section]")
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.split("#", 1)[0].strip()
        try:
            section[key] = float(value)
        except ValueError as exc:
            raise ObsError(f"budget file line {lineno}: "
                           f"non-numeric ceiling {value!r}") from exc
    return doc


def load_budgets(path: str) -> dict:
    """Load ``PERF_BUDGETS.toml``: {section: {bench key: ceiling}}.

    Sections must be a subset of :data:`BUDGET_SECTIONS` and every
    ceiling a positive number; raises :class:`ObsError` otherwise.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    if _toml is not None:
        try:
            doc = _toml.loads(raw.decode("utf-8"))
        except _toml.TOMLDecodeError as exc:
            raise ObsError(f"budget file {path}: {exc}") from exc
    else:  # pragma: no cover - 3.10 fallback
        doc = _parse_budget_toml(raw.decode("utf-8"))
    budgets: dict[str, dict[str, float]] = {}
    for section, table in doc.items():
        if section not in BUDGET_SECTIONS:
            raise ObsError(
                f"budget file {path}: unknown section [{section}] "
                f"(expected one of {sorted(BUDGET_SECTIONS)})")
        if not isinstance(table, dict):
            raise ObsError(f"budget file {path}: [{section}] must be "
                           "a table of 'bench key = ceiling'")
        clean: dict[str, float] = {}
        for key, ceiling in table.items():
            if not isinstance(ceiling, (int, float)) \
                    or isinstance(ceiling, bool) or ceiling <= 0:
                raise ObsError(
                    f"budget file {path}: [{section}] {key!r} ceiling "
                    f"must be a positive number, got {ceiling!r}")
            clean[str(key)] = float(ceiling)
        budgets[section] = clean
    return budgets


def check_budgets(budgets: dict, bench: dict, *,
                  label: str = "BENCH_paperbench.json",
                  headroom_warn: float = 0.9) -> RegressionReport:
    """Check measured bench numbers against their budget ceilings.

    Each present measurement over its ceiling is a ``fail`` finding;
    within ``headroom_warn`` of the ceiling is a ``warn`` (the budget
    is about to be blown); a budgeted key missing from the bench file
    is an ``info`` (the benchmark was not run).  Findings ride the
    same :class:`~repro.obs.regress.RegressionReport` the regression
    gate uses, so ``--gate`` and ``--json`` come for free.
    """
    report = RegressionReport(current_id="budget", current_label=label)
    findings = []
    for section in sorted(budgets):
        unit = BUDGET_SECTIONS.get(section, "")
        for key, ceiling in sorted(budgets[section].items()):
            report.checks += 1
            value = bench.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                findings.append(Finding(
                    kind=f"budget_{section}", key=key,
                    current=float("nan"), baseline=ceiling,
                    severity="info",
                    detail="no measurement in bench file"))
                continue
            value = float(value)
            if value > ceiling:
                findings.append(Finding(
                    kind=f"budget_{section}", key=key,
                    current=value, baseline=ceiling, severity="fail",
                    detail=f"{value:.6g} {unit} over the "
                           f"{ceiling:.6g} {unit} ceiling "
                           f"({100.0 * value / ceiling - 100.0:+.1f}%)"))
            elif value > headroom_warn * ceiling:
                findings.append(Finding(
                    kind=f"budget_{section}", key=key,
                    current=value, baseline=ceiling, severity="warn",
                    detail=f"within {100.0 * (1.0 - headroom_warn):.0f}% "
                           f"of the {ceiling:.6g} {unit} ceiling"))
    order = {"fail": 0, "warn": 1, "info": 2}
    findings.sort(key=lambda f: (order.get(f.severity, 3), f.kind, f.key))
    report.findings = findings
    return report
