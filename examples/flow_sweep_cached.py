"""Cached flow sweeps: survey a sizing budget with prefix sharing.

Runs the ASIC flow across a range of post-layout sizing budgets -- the
Section 6.2 "sizing can make a speed difference of 20% or more" knob --
as one :func:`repro.flows.run_flow_sweep` call.  Every sweep point maps
and places the same netlist, so the flow engine's fingerprint cache
computes that prefix once and replays it for the other points; the
per-stage records printed for each point show exactly which stages were
recomputed and which were replayed.

With ``--workers N`` the sweep fans out over a process pool and the
points share stage results through an on-disk cache directory instead
of process memory.

Run with::

    python examples/flow_sweep_cached.py [--workers N]
"""

import argparse
import os
import tempfile
import time

from repro.flows import AsicFlowOptions, run_flow_sweep
from repro.flows import cache as stage_cache

SIZING_BUDGETS = (0, 5, 10, 20, 40, 80)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep worker processes")
    parser.add_argument("--bits", type=int, default=8)
    args = parser.parse_args()

    points = [
        AsicFlowOptions(bits=args.bits, sizing_moves=moves)
        for moves in SIZING_BUDGETS
    ]
    with tempfile.TemporaryDirectory(prefix="stage-cache-") as cache_dir:
        start = time.perf_counter()
        results = run_flow_sweep(
            points, workers=args.workers,
            cache_dir=cache_dir if args.workers > 1 else None,
        )
        wall_s = time.perf_counter() - start
        spilled = len(os.listdir(cache_dir))

    print(f"{'moves':>6s} {'quoted MHz':>11s} {'FO4':>6s} "
          f"{'area um2':>10s}   stages")
    for options, result in zip(points, results):
        stages = " ".join(
            f"{r.name}:{'hit' if r.cache_hit else r.status}"
            for r in result.stage_records
        )
        print(f"{options.sizing_moves:>6d} "
              f"{result.quoted_frequency_mhz:>11.1f} "
              f"{result.fo4_depth:>6.1f} {result.area_um2:>10.0f}   "
              f"{stages}")

    if args.workers > 1:
        # Pool workers hit the shared disk cache; the parent's
        # in-memory counters never see those lookups.
        detail = f"{spilled} stage blobs shared on disk"
    else:
        stats = stage_cache.stats()
        detail = (f"{int(stats['hits'])} hits / "
                  f"{int(stats['misses'])} misses")
    print(f"\n{len(points)} points in {wall_s:.2f} s with "
          f"workers={args.workers}; stage cache: {detail}")


if __name__ == "__main__":
    main()
