"""Gate emission helper shared by the datapath generators.

Generators describe structures gate-by-gate; the :class:`Emitter` resolves
each requested function against the target library, transparently falling
back to the complement gate plus an inverter when only one polarity is
stocked (the Section 6.1 impoverished-library situation), and composing
missing functions (MUX, majority) from stocked primitives.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError

#: Complement pairs for polarity fallback.
_COMPLEMENTS = {
    "AND2": "NAND2", "NAND2": "AND2",
    "AND3": "NAND3", "NAND3": "AND3",
    "AND4": "NAND4", "NAND4": "AND4",
    "OR2": "NOR2", "NOR2": "OR2",
    "OR3": "NOR3", "NOR3": "OR3",
    "OR4": "NOR4", "NOR4": "OR4",
    "XOR2": "XNOR2", "XNOR2": "XOR2",
}

_PIN_NAMES = "ABCDEFGH"


class Emitter:
    """Emits gates into a module against one library.

    Args:
        module: target netlist being built.
        library: cell library to draw from.
        drive: preferred drive strength for emitted gates.
    """

    def __init__(
        self, module: Module, library: CellLibrary, drive: float = 2.0
    ) -> None:
        self.module = module
        self.library = library
        self.drive = drive

    # ------------------------------------------------------------------
    # Primitive emission with polarity fallback
    # ------------------------------------------------------------------

    def _pick(self, base: str) -> str:
        variants = self.library.drives_of(base)
        for cell in variants:
            if cell.drive >= self.drive:
                return cell.name
        return variants[-1].name

    def gate(self, base: str, *nets: str, out: str | None = None) -> str:
        """Emit one gate of the given base; returns the output net.

        Falls back to the complement gate plus an inverter when the base
        is not stocked but its complement is.
        """
        if self.library.has_base(base):
            return self._raw(base, nets, out)
        complement = _COMPLEMENTS.get(base)
        if complement is not None and self.library.has_base(complement):
            inner = self._raw(complement, nets, None)
            return self.inv(inner, out=out)
        raise SynthesisError(
            f"library {self.library.name} stocks neither {base} nor its "
            "complement"
        )

    def _raw(self, base: str, nets: tuple[str, ...], out: str | None) -> str:
        cell_name = self._pick(base)
        cell = self.library.get(cell_name)
        if len(nets) != cell.num_inputs:
            raise SynthesisError(
                f"{base} expects {cell.num_inputs} inputs, got {len(nets)}"
            )
        out_net = out if out is not None else self.module.add_net()
        pins = {_PIN_NAMES[i]: net for i, net in enumerate(nets)}
        if base == "MUX2":
            pins = {"A": nets[0], "B": nets[1], "S": nets[2]}
        self.module.add_instance(
            None, cell_name, inputs=pins, outputs={cell.output: out_net}
        )
        return out_net

    # ------------------------------------------------------------------
    # Named conveniences
    # ------------------------------------------------------------------

    def inv(self, a: str, out: str | None = None) -> str:
        return self.gate("INV", a, out=out)

    def buf(self, a: str, out: str | None = None) -> str:
        """Buffer; uses two inverters if no BUF is stocked."""
        if self.library.has_base("BUF"):
            return self._raw("BUF", (a,), out)
        return self.inv(self.inv(a), out=out)

    def and2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("AND2", a, b, out=out)

    def or2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("OR2", a, b, out=out)

    def nand2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("NAND2", a, b, out=out)

    def nor2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("NOR2", a, b, out=out)

    def xor2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("XOR2", a, b, out=out)

    def xnor2(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("XNOR2", a, b, out=out)

    def and3(self, a: str, b: str, c: str, out: str | None = None) -> str:
        if self.library.has_base("AND3") or self.library.has_base("NAND3"):
            return self.gate("AND3", a, b, c, out=out)
        return self.and2(self.and2(a, b), c, out=out)

    def or3(self, a: str, b: str, c: str, out: str | None = None) -> str:
        if self.library.has_base("OR3") or self.library.has_base("NOR3"):
            return self.gate("OR3", a, b, c, out=out)
        return self.or2(self.or2(a, b), c, out=out)

    def and_tree(self, nets: list[str]) -> str:
        """Balanced AND reduction of arbitrarily many nets."""
        return self._tree(nets, self.and2, self.and3)

    def or_tree(self, nets: list[str]) -> str:
        """Balanced OR reduction of arbitrarily many nets."""
        return self._tree(nets, self.or2, self.or3)

    def xor_tree(self, nets: list[str]) -> str:
        """Balanced XOR (parity) reduction."""
        return self._tree(nets, self.xor2, None)

    def _tree(self, nets, op2, op3):
        if not nets:
            raise SynthesisError("cannot reduce an empty net list")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            i = 0
            while i < len(level):
                remaining = len(level) - i
                if op3 is not None and remaining == 3:
                    nxt.append(op3(level[i], level[i + 1], level[i + 2]))
                    i += 3
                elif remaining >= 2:
                    nxt.append(op2(level[i], level[i + 1]))
                    i += 2
                else:
                    nxt.append(level[i])
                    i += 1
            level = nxt
        return level[0]

    def mux2(self, a: str, b: str, sel: str, out: str | None = None) -> str:
        """2:1 mux: ``sel ? b : a`` (sel=0 passes ``a``).

        Uses the MUX2 cell when stocked, else AND/OR/INV composition.
        """
        if self.library.has_base("MUX2"):
            return self._raw("MUX2", (a, b, sel), out)
        nsel = self.inv(sel)
        return self.or2(self.and2(a, nsel), self.and2(b, sel), out=out)

    def maj3(self, a: str, b: str, c: str, out: str | None = None) -> str:
        """Three-input majority (full-adder carry)."""
        ab = self.and2(a, b)
        a_or_b = self.or2(a, b)
        return self.or2(ab, self.and2(c, a_or_b), out=out)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Full adder; returns ``(sum, carry_out)``.

        Built as ``p = a ^ b; s = p ^ cin; cout = (a & b) | (p & cin)`` --
        the standard shared-propagate structure.
        """
        p = self.xor2(a, b)
        s = self.xor2(p, cin)
        cout = self.or2(self.and2(a, b), self.and2(p, cin))
        return s, cout

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Half adder; returns ``(sum, carry_out)``."""
        return self.xor2(a, b), self.and2(a, b)
