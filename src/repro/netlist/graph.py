"""Graph views of a netlist: ordering, levelisation, cones, depth.

These are the structural analyses shared by synthesis, STA, retiming and
placement.  Sequential elements (flip-flops, latches) act as barriers: the
combinational graph is cut at their boundaries, which is exactly the
pipelining structure Section 4 of the paper reasons about ("pipelines
place additional latches or registers in long chains of logic, reducing
the length of the critical path").
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection, Iterable

import networkx as nx

from repro.netlist.module import Module
from repro.netlist.nets import Instance, NetlistError, is_port_ref


class CombinationalLoopError(NetlistError):
    """Raised when a combinational cycle is found where none is allowed."""


def instance_graph(
    module: Module, sequential_cells: Collection[str] = ()
) -> nx.DiGraph:
    """Directed graph over instances, with edges following nets.

    Edges *into* sequential instances are cut, so the resulting graph is
    the combinational connectivity: a register appears as a source node
    feeding its fanout logic, and the gates driving its D pin appear as
    path endpoints.  Instances (sequential ones included) are all present
    as nodes.

    Args:
        module: the netlist.
        sequential_cells: names of library cells that are registers or
            latches; may be a set of names or anything supporting ``in``.
    """
    graph = nx.DiGraph()
    seq = set(sequential_cells)
    for inst in module.iter_instances():
        graph.add_node(inst.name, cell=inst.cell_name, sequential=inst.cell_name in seq)
    for inst in module.iter_instances():
        for net_name in inst.fanout_nets():
            for sink in module.sinks_of(net_name):
                if is_port_ref(sink):
                    continue
                sink_inst, _pin = sink
                if sink_inst in graph and graph.nodes[sink_inst].get("sequential"):
                    continue  # cut edges entering sequential elements
                graph.add_edge(inst.name, sink_inst, net=net_name)
    return graph


def full_graph(module: Module) -> nx.DiGraph:
    """Instance graph with *no* sequential cut -- used by retiming."""
    return instance_graph(module, sequential_cells=())


def topological_order(
    module: Module, sequential_cells: Collection[str] = ()
) -> list[str]:
    """Instances in combinational topological order.

    Raises:
        CombinationalLoopError: if the combinational graph has a cycle.
    """
    graph = instance_graph(module, sequential_cells)
    try:
        return list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible:
        cycle = find_combinational_loop(module, sequential_cells)
        raise CombinationalLoopError(
            f"module {module.name} has a combinational loop: {cycle}"
        ) from None


def find_combinational_loop(
    module: Module, sequential_cells: Collection[str] = ()
) -> list[str] | None:
    """Return one combinational cycle as a list of instance names, or None."""
    graph = instance_graph(module, sequential_cells)
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [u for u, _v, *_ in cycle_edges]


def levelize(
    module: Module, sequential_cells: Collection[str] = ()
) -> dict[str, int]:
    """Assign each instance its combinational logic level.

    Level 0 instances read only module inputs and/or register outputs;
    level k instances have at least one level-(k-1) combinational fanin.
    Sequential instances themselves sit at level 0, and feeding from a
    register does not add a level (the register output is a path start).
    """
    graph = instance_graph(module, sequential_cells)
    levels: dict[str, int] = {}
    for name in nx.topological_sort(graph):
        if graph.nodes[name].get("sequential"):
            levels[name] = 0
            continue
        contributions = [
            0 if graph.nodes[p].get("sequential") else levels[p] + 1
            for p in graph.predecessors(name)
        ]
        levels[name] = max(contributions, default=0)
    return levels


def logic_depth(module: Module, sequential_cells: Collection[str] = ()) -> int:
    """Maximum number of combinational gates on any register-to-register,
    input-to-register or input-to-output path.

    This is the unit-delay analogue of the FO4 path depth of Section 4:
    an ASIC with "significantly more levels of logic on the critical path"
    has a larger value here.
    """
    if module.instance_count() == 0:
        return 0
    levels = levelize(module, sequential_cells)
    comb = [
        lvl + 1
        for name, lvl in levels.items()
        if module.instance(name).cell_name not in set(sequential_cells)
    ]
    return max(comb, default=0)


def fanin_cone(
    module: Module,
    start: str,
    sequential_cells: Collection[str] = (),
) -> set[str]:
    """Instances in the combinational fan-in cone of an instance.

    The cone stops at sequential elements and module inputs; the starting
    instance is included.
    """
    graph = instance_graph(module, sequential_cells)
    if start not in graph:
        raise NetlistError(f"no instance {start!r} in module {module.name}")
    cone = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for pred in graph.predecessors(node):
            if pred not in cone:
                cone.add(pred)
                if not graph.nodes[pred].get("sequential"):
                    frontier.append(pred)
    return cone


def fanout_cone(
    module: Module,
    start: str,
    sequential_cells: Collection[str] = (),
) -> set[str]:
    """Instances in the combinational fan-out cone of an instance."""
    graph = instance_graph(module, sequential_cells)
    if start not in graph:
        raise NetlistError(f"no instance {start!r} in module {module.name}")
    cone = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for succ in graph.successors(node):
            if succ not in cone:
                cone.add(succ)
                if not graph.nodes[succ].get("sequential"):
                    frontier.append(succ)
    return cone


def max_fanout(module: Module) -> int:
    """Largest sink count on any net -- a driver-sizing stress indicator."""
    return max((net.fanout for net in module.nets.values()), default=0)


def primary_input_instances(
    module: Module, sequential_cells: Collection[str] = ()
) -> list[str]:
    """Instances with no combinational fan-in (path start points)."""
    graph = instance_graph(module, sequential_cells)
    return [n for n in graph.nodes if graph.in_degree(n) == 0]


def primary_output_instances(
    module: Module, sequential_cells: Collection[str] = ()
) -> list[str]:
    """Instances with no combinational fan-out (path end points)."""
    graph = instance_graph(module, sequential_cells)
    return [n for n in graph.nodes if graph.out_degree(n) == 0]
