"""Hypothesis property tests for the STA engine's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import rich_asic_library
from repro.netlist import Module
from repro.sta import (
    Clock,
    WireParasitics,
    analyze,
    asic_clock,
)
from repro.synth import SynthesisError, map_design, parse_expression
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(50000.0)

_VARS = ["a", "b", "c", "d"]


@st.composite
def expr_text(draw, depth=0):
    if depth > 3 or (depth > 0 and draw(st.booleans())):
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 3))
    left = draw(expr_text(depth=depth + 1))
    right = draw(expr_text(depth=depth + 1))
    if kind == 0:
        return f"~({left})"
    op = {1: "&", 2: "|", 3: "^"}[kind]
    return f"({left} {op} {right})"


def _mapped(text):
    try:
        return map_design({"y": parse_expression(text)}, RICH)
    except SynthesisError:
        return None


@settings(max_examples=40, deadline=None)
@given(expr_text())
def test_arrivals_monotone_along_critical_path(text):
    module = _mapped(text)
    if module is None:
        return
    report = analyze(module, RICH, CLK)
    arrivals = [step.arrival_ps for step in report.critical_path]
    assert arrivals == sorted(arrivals)
    assert all(step.delay_ps > 0 for step in report.critical_path)


@settings(max_examples=40, deadline=None)
@given(expr_text())
def test_min_period_at_least_one_gate_delay(text):
    module = _mapped(text)
    if module is None:
        return
    report = analyze(module, RICH, CLK)
    assert report.min_period_ps > 0
    if report.critical_path:
        assert report.min_period_ps >= max(
            s.delay_ps for s in report.critical_path
        ) - 1e-9


@settings(max_examples=30, deadline=None)
@given(expr_text(), st.floats(1.0, 200.0))
def test_extra_wire_cap_never_speeds_up(text, extra_cap):
    module = _mapped(text)
    if module is None:
        return
    base = analyze(module, RICH, CLK).min_period_ps
    internal = [
        n for n in module.nets
        if n not in module.inputs() and n not in module.outputs()
    ]
    if not internal:
        return
    wire = WireParasitics(extra_cap_ff={internal[0]: extra_cap})
    loaded = analyze(module, RICH, CLK, wire=wire).min_period_ps
    assert loaded >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(expr_text(), st.floats(0.0, 0.3))
def test_skew_never_helps_registered_paths(text, skew_fraction):
    from repro.sta import register_boundaries

    module = _mapped(text)
    if module is None:
        return
    wrapped = register_boundaries(module, RICH)
    period = 50000.0
    no_skew = analyze(
        wrapped, RICH, Clock("c0", period, skew_ps=0.0)
    ).min_period_ps
    with_skew = analyze(
        wrapped, RICH, Clock("c1", period, skew_ps=skew_fraction * period)
    ).min_period_ps
    assert with_skew >= no_skew - 1e-9
    # The difference is exactly the skew (it adds at the endpoint).
    assert with_skew - no_skew == pytest.approx(
        skew_fraction * period, abs=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(expr_text())
def test_endpoint_decomposition_identity(text):
    from repro.sta import register_boundaries

    module = _mapped(text)
    if module is None:
        return
    wrapped = register_boundaries(module, RICH)
    report = analyze(wrapped, RICH, asic_clock(30000.0))
    crit = report.critical
    assert report.min_period_ps == pytest.approx(
        crit.data_arrival_ps
        + crit.capture_overhead_ps
        + crit.skew_ps
        - crit.borrow_ps,
        rel=1e-9,
    )


@settings(max_examples=25, deadline=None)
@given(expr_text())
def test_upsizing_critical_gate_with_sizer_never_worsens(text):
    from repro.sizing import size_for_speed

    module = _mapped(text)
    if module is None or module.instance_count() < 2:
        return
    before = analyze(module, RICH, CLK).min_period_ps
    result = size_for_speed(module, RICH, CLK, max_moves=3)
    assert result.final_period_ps <= before + 1e-9
