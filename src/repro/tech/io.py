"""Technology file I/O: JSON serialisation of process descriptions.

Lets users define their own process nodes on disk (the moral equivalent
of a PDK's summary deck) and feed them to the library generators and
flows without touching Python.
"""

from __future__ import annotations

import json

from repro.tech.process import (
    InterconnectParameters,
    ProcessTechnology,
    TechnologyError,
)

_SCHEMA_VERSION = 1


def technology_to_dict(tech: ProcessTechnology) -> dict:
    """Serialise a technology to a JSON-compatible dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": tech.name,
        "drawn_length_um": tech.drawn_length_um,
        "leff_um": tech.leff_um,
        "vdd": tech.vdd,
        "gate_cap_ff_per_um": tech.gate_cap_ff_per_um,
        "unit_nmos_width_um": tech.unit_nmos_width_um,
        "pn_ratio": tech.pn_ratio,
        "inverter_parasitic": tech.inverter_parasitic,
        "interconnect": {
            "resistance_ohm_per_um": tech.interconnect.resistance_ohm_per_um,
            "capacitance_ff_per_um": tech.interconnect.capacitance_ff_per_um,
            "min_width_um": tech.interconnect.min_width_um,
            "min_spacing_um": tech.interconnect.min_spacing_um,
            "is_copper": tech.interconnect.is_copper,
        },
    }


def technology_from_dict(data: dict) -> ProcessTechnology:
    """Deserialise a technology from a dict.

    Raises:
        TechnologyError: for missing fields or version mismatches.
    """
    if not isinstance(data, dict):
        raise TechnologyError("technology data must be an object")
    version = data.get("schema", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise TechnologyError(
            f"unsupported technology schema {version}; "
            f"expected {_SCHEMA_VERSION}"
        )
    try:
        inner = data["interconnect"]
        interconnect = InterconnectParameters(
            resistance_ohm_per_um=float(inner["resistance_ohm_per_um"]),
            capacitance_ff_per_um=float(inner["capacitance_ff_per_um"]),
            min_width_um=float(inner.get("min_width_um", 0.32)),
            min_spacing_um=float(inner.get("min_spacing_um", 0.32)),
            is_copper=bool(inner.get("is_copper", False)),
        )
        return ProcessTechnology(
            name=str(data["name"]),
            drawn_length_um=float(data["drawn_length_um"]),
            leff_um=float(data["leff_um"]),
            vdd=float(data["vdd"]),
            interconnect=interconnect,
            gate_cap_ff_per_um=float(data.get("gate_cap_ff_per_um", 2.0)),
            unit_nmos_width_um=float(data.get("unit_nmos_width_um", 0.6)),
            pn_ratio=float(data.get("pn_ratio", 2.0)),
            inverter_parasitic=float(data.get("inverter_parasitic", 1.0)),
        )
    except KeyError as exc:
        raise TechnologyError(
            f"technology data missing field {exc.args[0]!r}"
        ) from None


def save_technology(tech: ProcessTechnology, path: str) -> None:
    """Write a technology JSON file."""
    with open(path, "w") as handle:
        json.dump(technology_to_dict(tech), handle, indent=2)
        handle.write("\n")


def load_technology(path: str) -> ProcessTechnology:
    """Read a technology JSON file.

    Raises:
        TechnologyError: on malformed content.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TechnologyError(f"invalid technology JSON: {exc}") from None
    return technology_from_dict(data)
