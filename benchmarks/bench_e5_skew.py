"""E5 -- Section 4.1: clock skew and latch overheads.

Claims measured: ASIC trees carry ~10% skew vs ~5% for custom trees (the
Alpha's 75 ps at 600 MHz); custom-quality skew alone is worth ~10% in
speed (we measure both the direct period ratio and the full flow effect
through the STA engine with latch borrowing); latches consume ~15% of the
Alpha's cycle.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import custom_library, rich_asic_library
from repro.core import ALPHA_CYCLE
from repro.datapath import kogge_stone_adder
from repro.physical import asic_clock_tree, custom_clock_tree
from repro.sta import (
    Clock,
    asic_clock,
    custom_clock,
    register_boundaries,
    skew_speedup,
    solve_min_period,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM


def _measure():
    # Clock-tree synthesis: each tree judged against its design class's
    # cycle (Xtensa-class 44 FO4 for the ASIC, Alpha-class 15 FO4 in the
    # faster custom process for the custom tree).
    cycle_ps = 44.0 * CMOS250_ASIC.fo4_delay_ps
    asic_tree = asic_clock_tree(CMOS250_ASIC, 10000.0, 4096)
    custom_tree = custom_clock_tree(CMOS250_CUSTOM, 10000.0, 4096)

    # Flow-level: same netlist, 10% vs 5% skew budgets.
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(kogge_stone_adder(16, library), library)
    base = 30.0 * CMOS250_ASIC.fo4_delay_ps
    ten = solve_min_period(
        module, library,
        Clock("clk10", base, skew_ps=0.10 * base),
    ).min_period_ps
    five = solve_min_period(
        module, library,
        Clock("clk5", base, skew_ps=0.05 * base),
    ).min_period_ps
    return asic_tree, custom_tree, cycle_ps, ten / five


def test_e5_skew_and_latches(benchmark):
    asic_tree, custom_tree, cycle_ps, flow_gain = run_once(benchmark, _measure)

    alpha_period = 1e6 / 600.0
    rows = [
        row("ASIC clock-tree skew fraction", "~10% of cycle",
            100 * asic_tree.skew_fraction(cycle_ps), 6.0, 14.0,
            fmt="{:.1f}%"),
        row("custom clock-tree skew fraction", "~5% of cycle",
            100 * custom_tree.skew_fraction(
                15.0 * CMOS250_CUSTOM.fo4_delay_ps
            ), 2.0, 7.0, fmt="{:.1f}%"),
        row("Alpha 21264 skew: 75 ps at 600 MHz", "~5%",
            100 * 75.0 / alpha_period, 4.0, 5.5, fmt="{:.1f}%"),
        row("speed from custom-quality skew (period)", "~10% (5-10%)",
            100 * (skew_speedup() - 1.0), 4.0, 11.0, fmt="{:.1f}%"),
        row("measured flow gain, 10% -> 5% skew", "5-10%",
            100 * (flow_gain - 1.0), 3.0, 11.0, fmt="{:.1f}%"),
        row("Alpha latch share of cycle", "15%",
            100 * ALPHA_CYCLE.latch_fo4 / ALPHA_CYCLE.cycle_fo4,
            13.0, 17.0, fmt="{:.1f}%"),
    ]
    report("E5  Clock skew and latch overheads (Section 4.1)", rows)
    for entry in rows:
        assert entry.ok, entry
    assert custom_tree.skew_ps < asic_tree.skew_ps


def test_e5_latch_borrowing(benchmark):
    """Multi-phase latch clocking (the time-borrowing half of 4.1)."""

    def _measure_borrowing():
        library = custom_library(CMOS250_CUSTOM)
        comb = kogge_stone_adder(16, library)
        flops = register_boundaries(comb, library, use_latches=False)
        latches = register_boundaries(comb, library, use_latches=True)
        clk = custom_clock(30.0 * CMOS250_CUSTOM.fo4_delay_ps)
        p_flop = solve_min_period(flops, library, clk).min_period_ps
        p_latch = solve_min_period(latches, library, clk).min_period_ps
        return p_flop / p_latch

    gain = run_once(benchmark, _measure_borrowing)
    rows = [
        row("latch + borrowing vs flops", "faster (enables time stealing)",
            gain, 1.01, 2.0),
    ]
    report("E5b Time borrowing with transparent latches", rows)
    assert rows[0].ok
