"""Micro-architecture performance model: issue width, branches, hazards.

Section 4.1: "Additional processing speed can be achieved by issuing
multiple instructions, but this requires speculative execution with
additional complex hardware logic (such as forwarding and branch
prediction) and more pipeline stages ... There is a trade-off between
issuing more instructions simultaneously and the penalties for branch
misprediction and data hazards" (the Hennessy-Patterson model the paper
cites as [16]).

The model computes delivered performance = frequency / CPI, where the
frequency comes from the FO4 pipeline budget (:mod:`overheads`) and the
CPI accumulates issue limits, branch misprediction and hazard stalls that
*grow with pipeline depth* -- producing the realistic knee where deeper
pipelining stops paying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pipeline.overheads import PipelineError, pipeline_speedup_fo4
from repro.tech.process import ProcessTechnology


@dataclass(frozen=True)
class Workload:
    """Dynamic instruction mix.

    Attributes:
        branch_fraction: fraction of instructions that are branches.
        load_use_fraction: fraction incurring a load-use style hazard.
        ilp: available instruction-level parallelism (limits effective
            issue width).
    """

    branch_fraction: float = 0.18
    load_use_fraction: float = 0.12
    ilp: float = 2.2

    def __post_init__(self) -> None:
        if not 0 <= self.branch_fraction < 1:
            raise PipelineError("branch fraction must be in [0, 1)")
        if not 0 <= self.load_use_fraction < 1:
            raise PipelineError("load-use fraction must be in [0, 1)")
        if self.ilp < 1:
            raise PipelineError("ILP must be at least 1")


#: A typical integer workload (SPECint-class rules of thumb).
TYPICAL_WORKLOAD = Workload()


@dataclass(frozen=True)
class MicroArchitecture:
    """A pipeline organisation.

    Attributes:
        name: label for reports.
        stages: pipeline depth.
        issue_width: peak instructions per cycle.
        predictor_accuracy: branch prediction hit rate.
        logic_depth_fo4: total datapath logic depth being pipelined.
        per_stage_overhead_fo4: latch + skew budget per stage.
    """

    name: str
    stages: int
    issue_width: int = 1
    predictor_accuracy: float = 0.90
    logic_depth_fo4: float = 60.0
    per_stage_overhead_fo4: float = 3.0

    def __post_init__(self) -> None:
        if self.stages < 1 or self.issue_width < 1:
            raise PipelineError("stages and issue width must be >= 1")
        if not 0 <= self.predictor_accuracy <= 1:
            raise PipelineError("predictor accuracy must be in [0, 1]")
        if self.logic_depth_fo4 <= 0 or self.per_stage_overhead_fo4 < 0:
            raise PipelineError("invalid FO4 budget")

    @property
    def cycle_fo4(self) -> float:
        """FO4 depth of one cycle."""
        return self.logic_depth_fo4 / self.stages + self.per_stage_overhead_fo4

    def frequency_mhz(self, tech: ProcessTechnology) -> float:
        return tech.frequency_mhz_from_fo4(self.cycle_fo4)

    @property
    def misprediction_penalty_cycles(self) -> float:
        """Refill cost of a mispredicted branch: the whole front end."""
        return max(1.0, float(self.stages))

    def cpi(self, workload: Workload = TYPICAL_WORKLOAD) -> float:
        """Cycles per instruction under the workload."""
        effective_issue = min(self.issue_width, workload.ilp)
        base = 1.0 / effective_issue
        branch_stalls = (
            workload.branch_fraction
            * (1.0 - self.predictor_accuracy)
            * self.misprediction_penalty_cycles
        )
        # Load-use (and similar) hazards scale with depth past classic 5.
        hazard_depth_factor = max(1.0, self.stages / 5.0)
        hazard_stalls = workload.load_use_fraction * 0.5 * hazard_depth_factor
        return base + branch_stalls + hazard_stalls

    def mips(
        self,
        tech: ProcessTechnology,
        workload: Workload = TYPICAL_WORKLOAD,
    ) -> float:
        """Delivered millions of instructions per second."""
        return self.frequency_mhz(tech) / self.cpi(workload)

    def speedup_over(
        self,
        baseline: "MicroArchitecture",
        tech: ProcessTechnology,
        workload: Workload = TYPICAL_WORKLOAD,
    ) -> float:
        """Delivered-performance ratio against a baseline organisation."""
        return self.mips(tech, workload) / baseline.mips(tech, workload)


def best_pipeline_depth(
    logic_depth_fo4: float,
    per_stage_overhead_fo4: float,
    tech: ProcessTechnology,
    workload: Workload = TYPICAL_WORKLOAD,
    issue_width: int = 1,
    predictor_accuracy: float = 0.90,
    max_stages: int = 20,
) -> tuple[int, float]:
    """Depth maximising delivered MIPS; returns ``(stages, mips)``.

    The optimum is interior: frequency grows with depth but CPI grows
    too, which is why real custom designs stopped at 13-15 FO4 cycles
    rather than pipelining indefinitely.
    """
    best: tuple[int, float] | None = None
    for stages in range(1, max_stages + 1):
        arch = MicroArchitecture(
            name=f"d{stages}",
            stages=stages,
            issue_width=issue_width,
            predictor_accuracy=predictor_accuracy,
            logic_depth_fo4=logic_depth_fo4,
            per_stage_overhead_fo4=per_stage_overhead_fo4,
        )
        mips = arch.mips(tech, workload)
        if best is None or mips > best[1]:
            best = (stages, mips)
    assert best is not None
    return best


#: Reference organisations from Section 2/4 of the paper.
ALPHA_21264A = MicroArchitecture(
    name="alpha21264a",
    stages=7,
    issue_width=6,
    predictor_accuracy=0.95,
    logic_depth_fo4=84.0,   # 7 stages x ~12 FO4 of logic each
    per_stage_overhead_fo4=3.0,  # 15 FO4 cycle: ~3 FO4 latch+skew
)

IBM_POWERPC_1GHZ = MicroArchitecture(
    name="ibm_1ghz",
    stages=4,
    issue_width=1,
    predictor_accuracy=0.90,
    logic_depth_fo4=40.0,   # 4 stages x ~10 FO4 of logic
    per_stage_overhead_fo4=2.6,  # 13 FO4 cycle, 20% overhead
)

#: Xtensa-class ASIC processor: Section 4 puts its cycle at ~44 FO4 with
#: ~30% sequencing overhead, i.e. ~31 FO4 of logic plus ~13 FO4 of latch,
#: skew and stage-imbalance cost per stage.  RTL logic per stage is far
#: deeper than a custom design's (no compact datapath cells, unbalanced
#: stages -- Section 4.1).
TENSILICA_XTENSA = MicroArchitecture(
    name="xtensa",
    stages=5,
    issue_width=1,
    predictor_accuracy=0.85,
    logic_depth_fo4=154.0,
    per_stage_overhead_fo4=13.2,
)

UNPIPELINED_ASIC = MicroArchitecture(
    name="unpipelined_asic",
    stages=1,
    issue_width=1,
    predictor_accuracy=1.0,  # no speculation in a single-cycle machine
    logic_depth_fo4=154.0,
    per_stage_overhead_fo4=13.2,
)
