"""Cell records: pins, timing arcs, logic functions, sequential timing.

A :class:`Cell` is one entry in a standard-cell library: a logic function
plus the electrical facts STA, sizing and power analysis need.  Section 6
of the paper is entirely about the consequences of these records being a
*fixed, discrete* menu ("any current ASIC methodology requires cell
selection from a fixed library, where transistor sizes and drive strengths
are determined by the choices in the library").
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.cells.delay import DelayModelError, LinearDelayArc, NLDMArc

#: The timing-arc types a cell may carry.
TimingArcModel = object  # LinearDelayArc | NLDMArc (kept loose for typing)


class CellError(ValueError):
    """Raised for malformed cell definitions or queries."""


class LogicFamily(enum.Enum):
    """Circuit family of a cell (Section 7)."""

    STATIC = "static"
    DOMINO = "domino"


class CellKind(enum.Enum):
    """Structural role of a cell."""

    COMBINATIONAL = "combinational"
    FLIP_FLOP = "flip_flop"
    LATCH = "latch"


@dataclass(frozen=True)
class InputPin:
    """An input pin with its electrical characteristics.

    Attributes:
        name: pin name (e.g. ``"A"``).
        cap_ff: input capacitance presented to the driving net.
        logical_effort: the pin's logical effort g (how much worse than an
            inverter this input is at driving current per unit input cap).
    """

    name: str
    cap_ff: float
    logical_effort: float = 1.0

    def __post_init__(self) -> None:
        if self.cap_ff <= 0:
            raise CellError(f"pin {self.name}: capacitance must be positive")
        if self.logical_effort <= 0:
            raise CellError(f"pin {self.name}: logical effort must be positive")


@dataclass(frozen=True)
class SequentialTiming:
    """Timing parameters of a flip-flop or level-sensitive latch.

    Section 4.1: "Registers and latches in ASICs have additional overheads
    as they have to be more tolerant to clock skew, and require a far
    larger absolute segment of the clock cycle".  That overhead is
    ``setup + clk_to_q`` here (plus skew, accounted in the clocking model).

    Attributes:
        setup_ps: data-before-clock requirement.
        hold_ps: data-after-clock requirement.
        clk_to_q_ps: clock edge to output valid.
        clock_pin: name of the clock input pin.
        transparent: True for a level-sensitive latch (enables time
            borrowing, Section 4.1's multi-phase clocking discussion).
    """

    setup_ps: float
    hold_ps: float
    clk_to_q_ps: float
    clock_pin: str = "CK"
    transparent: bool = False

    def __post_init__(self) -> None:
        if self.setup_ps < 0 or self.clk_to_q_ps < 0:
            raise CellError("setup and clk->Q must be non-negative")

    @property
    def overhead_ps(self) -> float:
        """Cycle time consumed by this element on a register-register path."""
        return self.setup_ps + self.clk_to_q_ps


_FUNC_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_ALLOWED_FUNC = re.compile(r"^[A-Za-z0-9_\s&|^~()!01]*$")


@dataclass(frozen=True)
class Cell:
    """One standard-cell library entry.

    Attributes:
        name: full cell name including drive suffix, e.g. ``"NAND2_X4"``.
        base_name: function family name, e.g. ``"NAND2"``.
        drive: drive strength multiple relative to the unit inverter.
        function: boolean expression over input pin names using
            ``& | ^ ~ ( )`` (empty for sequential cells).
        inputs: input pins, keyed by name.
        output: output pin name.
        max_load_ff: maximum load this cell may legally drive.
        area_um2: layout area.
        arcs: timing arc per input pin (input -> output delay).
        family: static CMOS or domino (Section 7).
        kind: combinational / flip-flop / latch.
        sequential: timing record for sequential cells, else None.
        inverting: True if the function is inverting in at least one input
            (library "polarity" in the Section 6 sense).
    """

    name: str
    base_name: str
    drive: float
    function: str
    inputs: dict[str, InputPin]
    output: str = "Y"
    max_load_ff: float = 100.0
    area_um2: float = 10.0
    arcs: dict[str, object] = field(default_factory=dict)
    family: LogicFamily = LogicFamily.STATIC
    kind: CellKind = CellKind.COMBINATIONAL
    sequential: SequentialTiming | None = None
    inverting: bool = False

    def __post_init__(self) -> None:
        if self.drive <= 0:
            raise CellError(f"cell {self.name}: drive must be positive")
        if self.max_load_ff <= 0 or self.area_um2 <= 0:
            raise CellError(f"cell {self.name}: load limit and area must be positive")
        if self.kind is CellKind.COMBINATIONAL:
            if self.sequential is not None:
                raise CellError(f"cell {self.name}: combinational cells have no "
                                "sequential timing")
            if not self.function:
                raise CellError(f"cell {self.name}: combinational cells need a "
                                "function")
            self._validate_function()
            missing = set(self.inputs) - set(self.arcs)
            if missing:
                raise CellError(
                    f"cell {self.name}: missing timing arcs for pins "
                    f"{sorted(missing)}"
                )
        else:
            if self.sequential is None:
                raise CellError(f"cell {self.name}: sequential cells need timing")
            if self.sequential.clock_pin not in self.inputs:
                raise CellError(
                    f"cell {self.name}: clock pin "
                    f"{self.sequential.clock_pin!r} is not an input"
                )

    def _validate_function(self) -> None:
        if not _ALLOWED_FUNC.match(self.function):
            raise CellError(
                f"cell {self.name}: function {self.function!r} uses "
                "characters outside & | ^ ~ ( ) 0 1"
            )
        refs = set(_FUNC_TOKEN.findall(self.function))
        unknown = refs - set(self.inputs)
        if unknown:
            raise CellError(
                f"cell {self.name}: function references unknown pins "
                f"{sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_sequential(self) -> bool:
        return self.kind is not CellKind.COMBINATIONAL

    @property
    def num_inputs(self) -> int:
        return len(self.data_input_names())

    def data_input_names(self) -> list[str]:
        """Input pins excluding the clock, in sorted order."""
        clock = self.sequential.clock_pin if self.sequential else None
        return sorted(p for p in self.inputs if p != clock)

    def input_cap_ff(self, pin: str) -> float:
        """Capacitance presented on one input pin."""
        try:
            return self.inputs[pin].cap_ff
        except KeyError:
            raise CellError(f"cell {self.name} has no input pin {pin!r}") from None

    def total_input_cap_ff(self) -> float:
        """Sum of all input pin capacitances."""
        return sum(pin.cap_ff for pin in self.inputs.values())

    def arc(self, pin: str) -> object:
        """Timing arc from an input pin to the output."""
        try:
            return self.arcs[pin]
        except KeyError:
            raise CellError(
                f"cell {self.name} has no timing arc from pin {pin!r}"
            ) from None

    def delay_ps(
        self, pin: str, load_ff: float, input_slew_ps: float = 0.0
    ) -> float:
        """Pin-to-output propagation delay."""
        return self.arc(pin).delay_ps(load_ff, input_slew_ps)

    def output_slew_ps(
        self, pin: str, load_ff: float, input_slew_ps: float = 0.0
    ) -> float:
        """Output transition time for a switch initiated at ``pin``."""
        return self.arc(pin).output_slew_ps(load_ff, input_slew_ps)

    def worst_delay_ps(self, load_ff: float, input_slew_ps: float = 0.0) -> float:
        """Worst pin-to-output delay over all input pins."""
        if not self.arcs:
            raise CellError(f"cell {self.name} has no timing arcs")
        return max(
            arc.delay_ps(load_ff, input_slew_ps) for arc in self.arcs.values()
        )

    def evaluate(self, values: dict[str, bool]) -> bool:
        """Evaluate the cell's boolean function.

        Args:
            values: truth assignment for every data input pin.

        Raises:
            CellError: for sequential cells or missing pin values.
        """
        if self.is_sequential:
            raise CellError(f"cell {self.name} is sequential; no static function")
        missing = set(self.inputs) - set(values)
        if missing:
            raise CellError(
                f"cell {self.name}: missing values for pins {sorted(missing)}"
            )
        expr = self.function.replace("!", "~")
        namespace = {name: bool(values[name]) for name in self.inputs}
        # The function grammar is validated at construction time to contain
        # only pin names and & | ^ ~ ( ) 0 1, so eval here is closed.
        result = eval(expr, {"__builtins__": {}}, namespace)  # noqa: S307
        return bool(result) if not isinstance(result, int) else bool(result & 1)

    def load_violated(self, load_ff: float) -> bool:
        """True if a load exceeds this cell's max capacitance limit."""
        return load_ff > self.max_load_ff
