"""Unit tests for repro.sta.clocking."""

import pytest

from repro.sta import (
    ASIC_SKEW_FRACTION,
    CUSTOM_SKEW_FRACTION,
    Clock,
    ClockingError,
    asic_clock,
    custom_clock,
    skew_speedup,
)


class TestClock:
    def test_frequency(self):
        clk = Clock("clk", period_ps=1000.0)
        assert clk.frequency_mhz == pytest.approx(1000.0)

    def test_skew_fraction(self):
        clk = asic_clock(2000.0)
        assert clk.skew_fraction == pytest.approx(ASIC_SKEW_FRACTION)
        assert clk.skew_ps == pytest.approx(200.0)

    def test_custom_clock_has_borrowing_and_phases(self):
        clk = custom_clock(1000.0)
        assert clk.skew_fraction == pytest.approx(CUSTOM_SKEW_FRACTION)
        assert clk.phases == (0.0, 0.5)
        assert clk.borrow_window_ps == pytest.approx(250.0)

    def test_asic_clock_no_borrowing(self):
        # Section 4.1: ASIC tools struggle with multi-phase time borrowing.
        clk = asic_clock(1000.0)
        assert clk.borrow_window_ps == 0.0
        assert clk.phases == (0.0,)

    def test_with_period_preserves_fraction(self):
        clk = asic_clock(1000.0).with_period(4000.0)
        assert clk.skew_ps == pytest.approx(400.0)
        assert clk.skew_fraction == pytest.approx(ASIC_SKEW_FRACTION)

    def test_alpha_21264_skew_point(self):
        # Section 4.1: 600 MHz Alpha, 75 ps skew, about 5%.
        period = 1e6 / 600.0
        clk = Clock("alpha", period_ps=period, skew_ps=75.0)
        assert clk.skew_fraction == pytest.approx(0.045, abs=0.005)

    def test_validation(self):
        with pytest.raises(ClockingError):
            Clock("c", period_ps=0.0)
        with pytest.raises(ClockingError):
            Clock("c", period_ps=100.0, skew_ps=-1.0)
        with pytest.raises(ClockingError):
            Clock("c", period_ps=100.0, skew_ps=100.0)
        with pytest.raises(ClockingError):
            Clock("c", period_ps=100.0, phases=(0.5, 0.0))
        with pytest.raises(ClockingError):
            Clock("c", period_ps=100.0, phases=(1.5,))
        with pytest.raises(ClockingError):
            Clock("c", period_ps=100.0, borrow_fraction=0.8)


class TestSkewSpeedup:
    def test_default_near_paper_value(self):
        # Improving skew from 10% to 5% of the cycle buys ~5.6% directly;
        # the paper rounds the total effect to ~10% including guard bands.
        speedup = skew_speedup()
        assert 1.04 <= speedup <= 1.10

    def test_identity_when_equal(self):
        assert skew_speedup(0.1, 0.1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ClockingError):
            skew_speedup(0.05, 0.10)  # custom worse than asic
