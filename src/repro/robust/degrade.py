"""Stage-level failure capture and graceful degradation for the flows.

Real sign-off flows survive non-convergent stages by reporting
violations and continuing; this module gives the reproduction's flows
the same property.  A :class:`StageRunner` wraps each flow stage:

* under the default ``on_error="raise"`` policy a stage failure is
  re-raised as a :class:`~repro.flows.results.FlowError` carrying the
  stage name and chaining the original exception;
* under ``on_error="keep_going"`` the failure is recorded as a
  :class:`~repro.robust.validate.Diagnostic` (code
  ``"flow.stage_failed"``), the ``robust.stage_failures`` obs counter
  is bumped, and the flow continues on best-effort fallback values
  (unsized netlist, no parasitics, clock-period timing estimate).

The nothing-fails path through a stage is one try/except frame, so the
nominal flow pays effectively nothing for the capture machinery.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro import obs
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.robust.validate import Diagnostic, Severity
from repro.sta.clocking import Clock
from repro.sta.engine import analyze

#: Accepted failure policies for the flows.
ON_ERROR_POLICIES = ("raise", "keep_going")

#: Per-stage fix hints attached to stage-failure diagnostics.
_STAGE_HINTS = {
    "map": "check the workload/library combination",
    "place": "continuing without wire parasitics; placement quality "
             "and wire delays are not reflected in the result",
    "cts": "continuing without fanout buffering",
    "size": "continuing with the unsized netlist; expect a slower "
            "period",
    "sta": "continuing with a clock-period timing estimate; the "
           "frequency numbers are a floor, not a measurement",
    "quote": "continuing with the typical frequency as the quote",
}


class StageRunner:
    """Runs named flow stages under a failure policy.

    Args:
        flow: flow label for messages (``"asic"`` / ``"custom"``).
        on_error: ``"raise"`` (default) or ``"keep_going"``.

    Attributes:
        diagnostics: accumulated findings (stage failures and notes);
            handed to ``FlowResult.diagnostics`` by the flows.
        failed_stages: names of failed stages in run order.
    """

    def __init__(self, flow: str, on_error: str = "raise") -> None:
        if on_error not in ON_ERROR_POLICIES:
            from repro.flows.results import FlowError

            raise FlowError(
                f"unknown on_error policy {on_error!r}; "
                f"known: {list(ON_ERROR_POLICIES)}"
            )
        self.flow = flow
        self.on_error = on_error
        self.diagnostics: list[Diagnostic] = []
        self.failed_stages: list[str] = []

    @property
    def keep_going(self) -> bool:
        return self.on_error == "keep_going"

    def failed(self, stage: str) -> bool:
        """Whether a named stage failed."""
        return stage in self.failed_stages

    def note(self, stage: str, message: str, hint: str = "") -> None:
        """Record a non-fatal warning against a stage."""
        self.diagnostics.append(Diagnostic(
            code="flow.stage_warning",
            severity=Severity.WARNING,
            message=message,
            subject=stage,
            hint=hint,
        ))

    @contextmanager
    def stage(self, name: str, critical: bool = False) -> Iterator[None]:
        """Run one stage body under the failure policy.

        Args:
            name: stage name recorded on failures.
            critical: a stage the flow cannot continue without (map);
                failures always raise, even under ``keep_going``.
        """
        try:
            yield
        except Exception as exc:  # fault-isolation boundary
            # Deferred import: repro.flows.asic imports this module, so
            # a module-level import of repro.flows.results would cycle.
            from repro.flows.results import FlowError

            self.failed_stages.append(name)
            self.diagnostics.append(Diagnostic(
                code="flow.stage_failed",
                severity=Severity.ERROR,
                message=f"{type(exc).__name__}: {exc}",
                subject=name,
                hint=_STAGE_HINTS.get(name, ""),
            ))
            obs.count("robust.stage_failures", stage=name)
            if self.on_error == "raise" or critical:
                if isinstance(exc, FlowError):
                    if exc.stage is None:
                        exc.stage = name
                    raise
                raise FlowError(
                    f"{self.flow} flow stage {name!r} failed: {exc}",
                    stage=name,
                ) from exc


@dataclass(frozen=True)
class DegradedTiming:
    """Minimal stand-in for a :class:`TimingReport` after an STA failure.

    Carries exactly the fields the flows read when building a
    :class:`FlowResult`, so the FO4 helpers and the quoting stage keep
    working on best-effort numbers.
    """

    min_period_ps: float
    logic_delay_ps: float = 0.0

    @property
    def max_frequency_mhz(self) -> float:
        return 1.0e6 / self.min_period_ps

    def overhead_fraction(self) -> float:
        return 1.0 - self.logic_delay_ps / self.min_period_ps


def fallback_timing(
    module: Module, library: CellLibrary, clock: Clock
) -> DegradedTiming:
    """Best-effort timing after the STA stage failed.

    First retry is a single :func:`analyze` pass without wire
    parasitics (the usual failure mode is corrupted parasitics or
    non-convergence of the period iteration, not the netlist itself);
    if even that fails, fall back to the analysed clock's own period --
    a floor, not a measurement, but enough for downstream stages to
    produce their part of the record.
    """
    try:
        report = analyze(module, library, clock)
        return DegradedTiming(
            min_period_ps=report.min_period_ps,
            logic_delay_ps=report.logic_delay_ps,
        )
    except Exception:  # fault-isolation boundary
        return DegradedTiming(min_period_ps=clock.period_ps)
