"""Clock distribution: H-tree synthesis and skew estimation.

Section 4.1: "Pipelining ASICs is also limited by ... greater clock skew
than carefully designed custom ICs.  There is typically 10% clock skew or
more for ASICs, compared with about 5% clock skew for a high quality
custom design of clocking trees."

The model builds a recursive H-tree over the die, computes per-level RC
delays, and converts per-segment mismatch (process variation plus load
imbalance) into a global skew number.  A "custom" tree differs from an
"ASIC" tree in its balancing quality: tighter load matching, active skew
tuning, wider (lower-R) clock wires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.physical.wires import wire_delay_ps
from repro.tech.process import ProcessTechnology, TechnologyError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.physical.fabric import Fabric

#: Per-segment delay mismatch of an automatically synthesised (ASIC) tree.
#: Late-90s CTS produced buffered trees with unequal branch depths, load
#: imbalance and local process variation; calibrated so a 4k-sink tree on
#: a 10 mm die carries ~10% of a 44-FO4 ASIC cycle as skew (Section 4.1).
ASIC_SEGMENT_MISMATCH = 0.26
#: Custom trees are hand-balanced and tuned; residual mismatch is small
#: (the Alpha's 75 ps on a 1.67 ns cycle).
CUSTOM_SEGMENT_MISMATCH = 0.05
#: A structured-ASIC master's tree is prefabricated and characterised
#: once (wide wires, fixed taps), so mismatch sits between synthesised
#: and hand-tuned: no per-design CTS surprises, no per-design tuning.
STRUCTURED_SEGMENT_MISMATCH = 0.12


@dataclass(frozen=True)
class ClockTree:
    """A synthesised H-tree.

    Attributes:
        levels: number of H recursion levels.
        total_delay_ps: source-to-leaf insertion delay.
        skew_ps: worst-case leaf-to-leaf skew.
        wirelength_um: total clock wire length.
        sinks: number of leaf regions served.
    """

    levels: int
    total_delay_ps: float
    skew_ps: float
    wirelength_um: float
    sinks: int

    def skew_fraction(self, period_ps: float) -> float:
        """Skew as a fraction of a clock period."""
        if period_ps <= 0:
            raise TechnologyError("period must be positive")
        return self.skew_ps / period_ps


def build_h_tree(
    tech: ProcessTechnology,
    die_edge_um: float,
    sink_count: int,
    segment_mismatch: float = ASIC_SEGMENT_MISMATCH,
    wide_wires: bool = False,
) -> ClockTree:
    """Synthesise an H-tree and estimate its skew.

    Args:
        tech: process technology.
        die_edge_um: edge of the (square) die region to cover.
        sink_count: number of clocked leaf regions to reach (the tree
            recurses until it has at least this many leaves).
        segment_mismatch: fractional delay mismatch per tree segment;
            mismatches add in RMS down independent branches.
        wide_wires: use 4x-width low-resistance clock wires (a custom
            trick; Section 6's wire-widening applied to the clock).
    """
    if die_edge_um <= 0 or sink_count < 1:
        raise TechnologyError("die edge and sink count must be positive")
    levels = max(1, math.ceil(math.log(sink_count, 4)))
    width = 4.0 * tech.interconnect.min_width_um if wide_wires else None
    total_delay = 0.0
    variance = 0.0
    wirelength = 0.0
    span = die_edge_um
    branches = 1
    for _level in range(levels):
        segment = span / 2.0
        seg_delay = wire_delay_ps(tech, segment, repeaters=True, width_um=width)
        total_delay += seg_delay
        variance += (segment_mismatch * seg_delay) ** 2
        wirelength += branches * 2.0 * segment
        branches *= 4
        span /= 2.0
    # Two independent branch paths diverge at the root: leaf-to-leaf skew
    # is the difference of two independent sums -> sqrt(2) * sigma, and we
    # quote a 3-sigma worst case.
    sigma = math.sqrt(variance)
    skew = 3.0 * math.sqrt(2.0) * sigma
    return ClockTree(
        levels=levels,
        total_delay_ps=total_delay,
        skew_ps=skew,
        wirelength_um=wirelength,
        sinks=4**levels,
    )


def asic_clock_tree(
    tech: ProcessTechnology, die_edge_um: float, sink_count: int
) -> ClockTree:
    """Automatically synthesised clock tree: ~10%-of-cycle skew class."""
    return build_h_tree(
        tech, die_edge_um, sink_count,
        segment_mismatch=ASIC_SEGMENT_MISMATCH, wide_wires=False,
    )


def custom_clock_tree(
    tech: ProcessTechnology, die_edge_um: float, sink_count: int
) -> ClockTree:
    """Hand-balanced custom tree: ~5%-of-cycle skew class."""
    return build_h_tree(
        tech, die_edge_um, sink_count,
        segment_mismatch=CUSTOM_SEGMENT_MISMATCH, wide_wires=True,
    )


def structured_clock_tree(
    tech: ProcessTechnology, fabric: "Fabric"
) -> ClockTree:
    """Prefabricated master tree: ~8%-of-cycle skew class.

    Unlike the synthesised/custom constructors, geometry comes from the
    :class:`~repro.physical.fabric.Fabric` itself: the tree spans the
    whole master (you buy its wires whether you use them or not) and
    taps every prefab sequential site, not just the occupied ones.
    """
    return build_h_tree(
        tech,
        die_edge_um=fabric.die_edge_um,
        sink_count=max(1, fabric.seq_slot_count),
        segment_mismatch=STRUCTURED_SEGMENT_MISMATCH,
        wide_wires=True,
    )
