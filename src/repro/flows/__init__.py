"""End-to-end implementation flows: pluggable implementation styles.

Every flow is a stage composition on the declarative
:mod:`repro.flows.engine`, registered as a :class:`Backend` in
:mod:`repro.flows.registry` (``asic``, ``custom`` and ``structured``
ship built in); :mod:`repro.flows.cache` gives them fingerprint-keyed
stage caching and :mod:`repro.flows.sweep` fans option sets across
workers with the shared-prefix cache wired in, resolving each point's
flow from its options class.
"""

from repro.flows.asic import (
    ASIC_GRAPH,
    WORKLOADS,
    asic_flow_graph,
    run_asic_flow,
)
from repro.flows.custom import (
    CUSTOM_GRAPH,
    custom_flow_graph,
    run_custom_flow,
)
from repro.flows.engine import (
    FlowContext,
    FlowEngine,
    Stage,
    StageGraph,
    stage_fingerprint,
)
from repro.flows.options import (
    AsicFlowOptions,
    CustomFlowOptions,
    FlowOptions,
    StructuredFlowOptions,
    options_fingerprint,
)
from repro.flows.registry import (
    BACKENDS,
    Backend,
    backend_for_options,
    backend_names,
    get_backend,
    register_backend,
    run_backend_flow,
)
from repro.flows.results import FlowError, FlowResult, StageRecord
from repro.flows.structured import (
    STRUCTURED_GRAPH,
    run_structured_flow,
    structured_flow_graph,
)
from repro.flows.sweep import run_flow_sweep, run_flow_sweep_report

__all__ = [
    "ASIC_GRAPH",
    "AsicFlowOptions",
    "BACKENDS",
    "Backend",
    "CUSTOM_GRAPH",
    "CustomFlowOptions",
    "FlowContext",
    "FlowEngine",
    "FlowError",
    "FlowOptions",
    "FlowResult",
    "STRUCTURED_GRAPH",
    "Stage",
    "StageGraph",
    "StageRecord",
    "StructuredFlowOptions",
    "WORKLOADS",
    "asic_flow_graph",
    "backend_for_options",
    "backend_names",
    "custom_flow_graph",
    "get_backend",
    "options_fingerprint",
    "register_backend",
    "run_asic_flow",
    "run_backend_flow",
    "run_custom_flow",
    "run_flow_sweep",
    "run_flow_sweep_report",
    "run_structured_flow",
    "stage_fingerprint",
    "structured_flow_graph",
]
