"""Unit tests for the pre-flight validation lint passes."""

import pytest

from repro.cells import rich_asic_library
from repro.cells.delay import LinearDelayArc, NLDMArc
from repro.datapath import ripple_carry_adder
from repro.netlist import Module
from repro.robust import (
    Diagnostic,
    Severity,
    ValidationError,
    has_errors,
    preflight,
    require_clean,
    validate_library,
    validate_module,
)
from repro.sta import register_boundaries
from repro.tech import CMOS250_ASIC


def fresh_library():
    return rich_asic_library(CMOS250_ASIC)


def adder_module(library, bits=4):
    return register_boundaries(ripple_carry_adder(bits, library), library)


def codes(diags):
    return {d.code for d in diags}


class TestDiagnostic:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR

    def test_to_dict_uses_labels(self):
        d = Diagnostic(code="x.y", severity=Severity.WARNING,
                       message="m", subject="s", hint="h")
        as_dict = d.to_dict()
        assert as_dict["severity"] == "warning"
        assert as_dict["code"] == "x.y"
        assert as_dict["hint"] == "h"

    def test_str_names_code_and_subject(self):
        d = Diagnostic(code="netlist.undriven", severity=Severity.ERROR,
                       message="no driver", subject="n3")
        assert "netlist.undriven" in str(d)
        assert "n3" in str(d)


class TestValidateModule:
    def test_clean_netlist_has_no_errors(self):
        library = fresh_library()
        module = adder_module(library)
        assert not has_errors(validate_module(module, library))

    def test_undriven_net_flagged(self):
        library = fresh_library()
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "INV_X1", inputs={"A": "w"},
                            outputs={"Y": "y"})
        diags = validate_module(module, library)
        undriven = [d for d in diags if d.code == "netlist.undriven"]
        assert len(undriven) == 1
        assert undriven[0].subject == "w"
        assert undriven[0].severity is Severity.ERROR

    def test_floating_net_is_warning_but_port_is_not(self):
        library = fresh_library()
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "INV_X1", inputs={"A": "a"},
                            outputs={"Y": "y"})
        module.add_instance("dead", "INV_X1", inputs={"A": "a"},
                            outputs={"Y": "unused"})
        diags = validate_module(module, library)
        floating = [d for d in diags if d.code == "netlist.floating"]
        assert [d.subject for d in floating] == ["unused"]
        assert floating[0].severity is Severity.WARNING

    def test_unknown_cell_flagged(self):
        library = fresh_library()
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "MAGIC_X9", inputs={"A": "a"},
                            outputs={"Y": "y"})
        diags = validate_module(module, library)
        assert "netlist.unknown_cell" in codes(diags)
        assert has_errors(diags)

    def test_combinational_loop_flagged(self):
        library = fresh_library()
        module = Module("looped")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g1", "NAND2_X1",
                            inputs={"A": "a", "B": "w2"},
                            outputs={"Y": "w1"})
        module.add_instance("g2", "NAND2_X1",
                            inputs={"A": "w1", "B": "a"},
                            outputs={"Y": "w2"})
        module.add_instance("g3", "NAND2_X1",
                            inputs={"A": "w1", "B": "w2"},
                            outputs={"Y": "y"})
        diags = validate_module(module, library)
        assert "netlist.combinational_loop" in codes(diags)

    def test_fanout_cap_flagged(self):
        library = fresh_library()
        module = Module("fan")
        module.add_input("a")
        module.add_instance("drv", "INV_X4", inputs={"A": "a"},
                            outputs={"Y": "w"})
        for i in range(6):
            out = module.add_output(f"y{i}")
            module.add_instance(f"s{i}", "INV_X1", inputs={"A": "w"},
                                outputs={"Y": out})
        diags = validate_module(module, library, max_fanout=4)
        fanout = [d for d in diags if d.code == "netlist.fanout"]
        assert fanout and fanout[0].subject == "w"
        assert not [d for d in validate_module(module, library,
                                               max_fanout=10)
                    if d.code == "netlist.fanout"]

    def test_load_cap_violation_flagged(self):
        library = fresh_library()
        module = Module("heavy")
        module.add_input("a")
        module.add_instance("drv", "INV_X1", inputs={"A": "a"},
                            outputs={"Y": "w"})
        for i in range(40):
            out = module.add_output(f"y{i}")
            module.add_instance(f"s{i}", "NAND4_X16",
                                inputs={"A": "w", "B": "w", "C": "w",
                                        "D": "w"},
                                outputs={"Y": out})
        diags = validate_module(module, library)
        assert "netlist.load_cap" in codes(diags)


class TestValidateLibrary:
    def test_clean_library_is_clean(self):
        assert validate_library(fresh_library()) == []

    def test_nan_arc_flagged(self):
        library = fresh_library()
        cell = library.get("NAND2_X1")
        cell.arcs["A"] = LinearDelayArc(parasitic_ps=float("nan"),
                                        effort_ps_per_ff=1.0)
        diags = validate_library(library)
        nan = [d for d in diags if d.code == "library.nan_delay"]
        assert nan and nan[0].subject == "NAND2_X1.A"

    def test_non_monotone_table_flagged(self):
        library = fresh_library()
        cell = library.get("NAND2_X1")
        cell.arcs["A"] = NLDMArc(
            slew_axis_ps=(10.0, 100.0),
            load_axis_ff=(0.0, 10.0, 20.0),
            delay_table_ps=((80.0, 20.0, 5.0), (90.0, 25.0, 8.0)),
            slew_table_ps=((20.0, 20.0, 20.0), (30.0, 30.0, 30.0)),
        )
        diags = validate_library(library)
        assert "library.non_monotone" in codes(diags)

    def test_monotone_table_not_flagged(self):
        library = fresh_library()
        cell = library.get("NAND2_X1")
        cell.arcs["A"] = NLDMArc(
            slew_axis_ps=(10.0, 100.0),
            load_axis_ff=(0.0, 10.0, 20.0),
            delay_table_ps=((5.0, 20.0, 80.0), (8.0, 25.0, 90.0)),
            slew_table_ps=((20.0, 20.0, 20.0), (30.0, 30.0, 30.0)),
        )
        diags = validate_library(library)
        assert "library.non_monotone" not in codes(diags)


class TestPreflightPolicy:
    def test_preflight_clean(self):
        library = fresh_library()
        module = adder_module(library)
        diags = preflight(module, library)
        assert not has_errors(diags)
        require_clean(diags)  # must not raise

    def test_require_clean_raises_with_listing(self):
        library = fresh_library()
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "INV_X1", inputs={"A": "w"},
                            outputs={"Y": "y"})
        diags = validate_module(module, library)
        with pytest.raises(ValidationError, match="netlist.undriven"):
            require_clean(diags)
