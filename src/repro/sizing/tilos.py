"""TILOS-style greedy sensitivity sizing of mapped netlists.

Fishburn & Dunlop's TILOS (paper reference [7]) sizes transistors by
repeatedly bumping the element with the best delay-improvement-per-area
sensitivity on the critical path.  Our gate-level version does the same
over library drive strengths:

1. run STA, extract the critical path;
2. for every gate on it, trial the next drive variant (or a continuously
   scaled cell when the library has a continuous factory);
3. commit the swap with the best delay gain per added area;
4. repeat until timing is met, no move helps, or the budget runs out.

Section 6.2: "After layout, transistors can be resized accounting for the
drive strengths required to send signals across the circuit ... can make
a speed difference of 20% or more."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.sizing.logical_effort import SizingError
from repro.sta.clocking import Clock
from repro.sta.engine import TimingReport, analyze
from repro.sta.timing_graph import WireParasitics


@dataclass
class SizingResult:
    """Outcome of a sizing run.

    Attributes:
        initial_period_ps: minimum period before sizing.
        final_period_ps: minimum period after sizing.
        moves: number of accepted drive changes.
        area_before_um2: total cell area before.
        area_after_um2: total cell area after.
        report: final timing report.
    """

    initial_period_ps: float
    final_period_ps: float
    moves: int
    area_before_um2: float
    area_after_um2: float
    report: TimingReport

    @property
    def speedup(self) -> float:
        return self.initial_period_ps / self.final_period_ps

    @property
    def area_growth(self) -> float:
        return self.area_after_um2 / self.area_before_um2


def total_area_um2(module: Module, library: CellLibrary) -> float:
    """Total cell area of a mapped netlist."""
    return sum(
        library.get(inst.cell_name).area_um2 for inst in module.iter_instances()
    )


def _next_drive_cell(library: CellLibrary, cell_name: str,
                     continuous_step: float = 1.4) -> str | None:
    """Name of the next-stronger variant of a cell, or None at the top.

    With a continuous factory, generates a cell ``continuous_step`` times
    stronger and registers it in the library so STA can resolve it.
    """
    cell = library.get(cell_name)
    if cell.is_sequential:
        return None
    if library.continuous_factory is not None:
        new_drive = cell.drive * continuous_step
        candidate = library.continuous_factory(cell.base_name, new_drive)
        if candidate.name not in library:
            library.add(candidate)
        return candidate.name
    variants = library.drives_of(cell.base_name)
    stronger = [c for c in variants if c.drive > cell.drive]
    if not stronger:
        return None
    return stronger[0].name


def size_for_speed(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    target_period_ps: float | None = None,
    max_moves: int = 500,
    area_limit: float = 3.0,
) -> SizingResult:
    """Greedy sensitivity sizing; mutates ``module`` in place.

    Args:
        module: mapped netlist to size.
        library: its library (grows new cells in continuous mode).
        clock: analysis clock.
        wire: optional wire parasitics (post-layout resizing, Sec. 6.2).
        target_period_ps: stop once this period is met (None = squeeze
            until no move helps).
        max_moves: upper bound on accepted changes.
        area_limit: stop when area grows beyond this multiple.

    Raises:
        SizingError: on invalid budgets.
    """
    if max_moves < 0 or area_limit < 1.0:
        raise SizingError("invalid sizing budget")
    with obs.span("sizing.tilos", budget=max_moves) as sp:
        area_before = total_area_um2(module, library)
        report = analyze(module, library, clock, wire=wire)
        initial_period = report.min_period_ps
        moves = 0
        while moves < max_moves:
            if target_period_ps is not None and (
                report.min_period_ps <= target_period_ps
            ):
                break
            if total_area_um2(module, library) > area_limit * area_before:
                break
            move = _best_move(module, library, clock, wire, report)
            if move is None:
                break
            instance, new_cell = move
            module.replace_cell(instance, new_cell)
            report = analyze(module, library, clock, wire=wire)
            if not math.isfinite(report.min_period_ps):
                raise SizingError(
                    f"sizing diverged to a non-finite period after "
                    f"{moves} moves (swap {instance} -> {new_cell})"
                )
            moves += 1
        area_after = total_area_um2(module, library)
        obs.count("sizing.tilos.calls")
        obs.observe("sizing.tilos.moves", moves)
        obs.observe("sizing.tilos.area_delta_um2", area_after - area_before)
        sp.set(moves=moves, area_delta_um2=area_after - area_before,
               speedup=initial_period / report.min_period_ps)
    return SizingResult(
        initial_period_ps=initial_period,
        final_period_ps=report.min_period_ps,
        moves=moves,
        area_before_um2=area_before,
        area_after_um2=area_after,
        report=report,
    )


def _best_move(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None,
    report: TimingReport,
) -> tuple[str, str] | None:
    """Try upsizing each critical-path gate; return the best (inst, cell).

    Sensitivity is delay improvement per unit added area; moves that do
    not improve the period are rejected.
    """
    base_period = report.min_period_ps
    best: tuple[float, str, str] | None = None
    seen: set[str] = set()
    for step in report.critical_path:
        if step.instance in seen:
            continue
        seen.add(step.instance)
        old_cell = module.instance(step.instance).cell_name
        candidate = _next_drive_cell(library, old_cell)
        if candidate is None:
            continue
        added_area = (
            library.get(candidate).area_um2 - library.get(old_cell).area_um2
        )
        obs.count("sizing.tilos.trials")
        module.replace_cell(step.instance, candidate)
        trial = analyze(module, library, clock, wire=wire)
        module.replace_cell(step.instance, old_cell)
        gain = base_period - trial.min_period_ps
        if gain <= 1e-9:
            continue
        sensitivity = gain / max(added_area, 1e-9)
        if best is None or sensitivity > best[0]:
            best = (sensitivity, step.instance, candidate)
    if best is None:
        return None
    return best[1], best[2]


def downsize_off_critical(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    slack_margin_ps: float = 0.0,
) -> int:
    """Minimum-power sizing: shrink gates that can afford it.

    Section 6.2: "Sizing transistors minimally to reduce power
    consumption, except on critical paths where they are optimally sized
    to meet speed requirements".  Every gate is trial-downsized to the
    next weaker variant and the change is kept if the minimum period does
    not degrade (beyond the margin).  Returns the number of gates shrunk.
    """
    report = analyze(module, library, clock, wire=wire)
    budget = report.min_period_ps + slack_margin_ps
    shrunk = 0
    for inst_name in sorted(module.instances):
        old_cell_name = module.instance(inst_name).cell_name
        cell = library.get(old_cell_name)
        if cell.is_sequential:
            continue
        variants = library.drives_of(cell.base_name)
        weaker = [c for c in variants if c.drive < cell.drive]
        if not weaker:
            continue
        module.replace_cell(inst_name, weaker[-1].name)
        trial = analyze(module, library, clock, wire=wire)
        if trial.min_period_ps <= budget + 1e-9:
            shrunk += 1
        else:
            module.replace_cell(inst_name, old_cell_name)
    obs.count("sizing.tilos.downsized", shrunk)
    return shrunk
