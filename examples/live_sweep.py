"""Watching a long sweep live: event bus, heartbeats, dashboard.

Long design-space sweeps used to be a black box between "started" and
"done".  This example turns the live telemetry layer on and fans an
ASIC flow sweep across worker processes: every stage start/finish,
cache replay, task completion and worker heartbeat is published to the
process event bus *as it happens*, forwarded out of the pool workers
over a multiprocessing queue, and folded into a terminal dashboard --
per-flow stage progress, sweep completion with ETA, per-worker lanes.

The same stream lands in a JSONL file, so a second terminal can attach
to the run while it is still going::

    python examples/live_sweep.py --workers 2 --events /tmp/ev.jsonl
    # elsewhere:
    repro-gap top /tmp/ev.jsonl --follow

After the sweep, the incremental aggregates (running min/median/max of
each per-task metric, maintained event-by-event, no post-hoc pass) are
printed next to the bus's own delivery statistics.

Run with::

    python examples/live_sweep.py [--workers N] [--events FILE]
"""

import argparse
import sys

from repro.flows import AsicFlowOptions, run_flow_sweep
from repro.obs import live

SIZING_BUDGETS = (0, 4, 8, 16, 24, 40)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="sweep worker processes")
    parser.add_argument("--bits", type=int, default=8)
    parser.add_argument("--events", metavar="FILE", default=None,
                        help="also stream events to FILE as JSON lines "
                             "(watch with `repro-gap top FILE --follow`)")
    args = parser.parse_args()

    points = [
        AsicFlowOptions(bits=args.bits, sizing_moves=moves)
        for moves in SIZING_BUDGETS
    ]

    # Turn the bus on (with an optional JSONL sink), hang a dashboard
    # off it, and ask workers to heartbeat twice a second.
    bus = live.enable(jsonl=args.events)
    live.configure_watch(heartbeat_s=0.5)
    dashboard = live.Dashboard(stream=sys.stderr, refresh_s=0.2)
    bus.add_callback(dashboard)

    print(f"sweeping {len(points)} sizing budgets with "
          f"{args.workers} worker(s)...", file=sys.stderr)
    results = run_flow_sweep(points, workers=args.workers,
                             label="example.live_sweep")

    print(dashboard.final(), file=sys.stderr)
    print()
    print(f"{'sizing moves':>12s} {'quoted MHz':>11s} {'area um^2':>10s}")
    for moves, result in zip(SIZING_BUDGETS, results):
        print(f"{moves:>12d} {result.quoted_frequency_mhz:>11.1f} "
              f"{result.area_um2:>10.0f}")

    print("\nlive aggregates (folded per task.done event):")
    for key, stats in live.get_aggregate().snapshot().items():
        print(f"  {key:<12s} min {stats['min']:>9.2f}   "
              f"median {stats['median']:>9.2f}   "
              f"max {stats['max']:>9.2f}")

    stats = bus.stats()
    by_kind = ", ".join(f"{k}={v}" for k, v in stats["by_kind"].items())
    print(f"\nbus: {stats['published']} events ({by_kind})")
    if args.events:
        print(f"event stream: {args.events}  "
              f"(replay with `repro-gap top {args.events}`)")
    live.disable()


if __name__ == "__main__":
    main()
