"""E1 -- Section 2: the 6-8x ASIC-custom speed gap.

Reproduces the survey comparison by *running the flows*: a naive ASIC, a
best-practice (Xtensa-class) ASIC, and the all-levers custom flow on the
same ALU workload, then checks that the measured gaps bracket the paper's
6-8x and that its generation-equivalence arithmetic holds.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.core import analyze_gap, headline_gap
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    run_asic_flow,
    run_custom_flow,
)
from repro.tech import generations_equivalent, years_equivalent

BITS = 8


def _run_all():
    naive = run_asic_flow(
        AsicFlowOptions(workload="cpu", bits=BITS, sizing_moves=20)
    )
    best_asic = run_asic_flow(
        AsicFlowOptions(
            bits=BITS, workload="cpu_macro", pipeline_stages=5,
            sizing_moves=20,
        )
    )
    custom = run_custom_flow(
        CustomFlowOptions(
            workload="cpu_macro", bits=BITS, target_cycle_fo4=14.0,
            sizing_moves=30,
        )
    )
    return naive, best_asic, custom


def test_e1_survey_gap(benchmark):
    naive, best_asic, custom = run_once(benchmark, _run_all)

    naive_gap = analyze_gap(naive, custom).total_ratio
    best_gap = analyze_gap(best_asic, custom).total_ratio
    survey_low, survey_high = headline_gap()

    rows = [
        row("survey: fastest custom / typical ASIC", "6x-8x",
            (survey_low + survey_high) / 2, 6.0, 8.5),
        row("measured: custom vs naive ASIC", "6x-18x", naive_gap,
            5.0, 18.0),
        row("measured: custom vs best-practice ASIC", "2x-8x", best_gap,
            1.5, 8.5),
        row("gap in process generations (at 8x)", "~5",
            generations_equivalent(8.0), 4.5, 5.6, fmt="{:.1f}"),
        row("gap in years of process improvement", "~10",
            years_equivalent(8.0), 9.0, 11.0, fmt="{:.0f}"),
        row("ASIC quoted frequency (8b exec stage)", "120-150 MHz class",
            naive.quoted_frequency_mhz, 60.0, 350.0, fmt="{:.0f} MHz"),
        row("custom cycle depth", "13-15 FO4", custom.fo4_depth,
            8.0, 20.0, fmt="{:.1f} FO4"),
    ]
    report("E1  Section 2 survey: the headline gap", rows)
    for entry in rows:
        assert entry.ok, entry
    assert best_gap < naive_gap
