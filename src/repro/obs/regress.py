"""Regression detection over the persistent run ledger.

Given a *current* :class:`~repro.obs.ledger.RunRecord`, the engine
selects a baseline from earlier records with the **same kind and
fingerprint** (same design point, policy knobs excluded) and compares:

* **wall time** -- the run total and every per-stage wall time, each
  against the *median* of the last N matching baseline runs.  Stage
  walls are only compared like-for-like: a stage replayed from the
  cache is never measured against a stage that actually computed.
  A regression needs both a relative excess (``wall_frac``) and an
  absolute excess (``wall_abs_s``), so microsecond noise on trivial
  stages can never trip the gate;
* **cache behaviour** -- any metric key ending in ``.hit_rate`` whose
  value dropped by more than ``hit_rate_drop`` (absolute);
* **paper claims** -- a claim whose value left its tolerance band
  ``[lo, hi]`` fails outright; a claim still in band but drifting from
  the baseline median by more than ``claim_frac`` (relative) warns.

``repro-gap runs regress`` renders the findings; ``--gate`` turns any
*fail*-severity finding into a nonzero exit, which is how CI watches
the trajectory without a human eyeballing ``BENCH_*.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.ledger import RunRecord

#: Finding severities, most severe first.
SEVERITIES = ("fail", "warn", "info")


@dataclass(frozen=True)
class Thresholds:
    """Knobs of the regression comparison.

    Attributes:
        wall_frac: relative wall-time excess that flags a regression
            (0.5 = 50% slower than the baseline median).
        wall_abs_s: absolute excess (seconds) that must *also* be
            exceeded -- the noise floor for tiny stages.
        hit_rate_drop: absolute drop in any ``*.hit_rate`` metric that
            flags a cache regression.
        claim_frac: relative drift of an in-band claim value from the
            baseline median that warns.
        baseline_n: how many of the most recent matching runs feed the
            median baseline.
    """

    wall_frac: float = 0.5
    wall_abs_s: float = 0.02
    hit_rate_drop: float = 0.15
    claim_frac: float = 0.05
    baseline_n: int = 5


@dataclass(frozen=True)
class Finding:
    """One detected difference between a run and its baseline.

    Attributes:
        kind: ``"total_wall"``, ``"stage_wall"``, ``"cache_hit_rate"``,
            ``"claim_band"`` or ``"claim_drift"``.
        key: what moved (stage name, metric key, claim name).
        current: this run's value.
        baseline: the baseline median.
        severity: ``"fail"``, ``"warn"`` or ``"info"``.
        detail: human-readable explanation.
    """

    kind: str
    key: str
    current: float
    baseline: float
    severity: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": self.key,
            "current": self.current,
            "baseline": self.baseline,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass
class RegressionReport:
    """Outcome of one run-vs-baseline comparison.

    Attributes:
        current_id: run id of the record under test.
        current_label: its label.
        baseline_ids: run ids the baseline median was built from.
        checks: how many comparisons were performed.
        findings: detected regressions/drifts, most severe first.
    """

    current_id: str
    current_label: str
    baseline_ids: list[str] = field(default_factory=list)
    checks: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def failures(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def ok(self) -> bool:
        """True when no fail-severity finding survived."""
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "current_id": self.current_id,
            "current_label": self.current_label,
            "baseline_ids": list(self.baseline_ids),
            "checks": self.checks,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable findings table."""
        lines = [
            f"regression check: run {self.current_id} "
            f"({self.current_label}) vs median of "
            f"{len(self.baseline_ids)} baseline run(s)"
        ]
        if not self.findings:
            lines.append(f"  OK    {self.checks} checks, no finding")
            return "\n".join(lines)
        for f in self.findings:
            lines.append(
                f"  {f.severity.upper():<5s} {f.kind:<15s} "
                f"{f.key:<28.28s} {f.detail}"
            )
        warns = sum(1 for f in self.findings if f.severity == "warn")
        lines.append(
            f"  {self.checks} checks: {len(self.failures)} failure(s), "
            f"{warns} warning(s)"
        )
        return "\n".join(lines)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def matching_history(records: Sequence[RunRecord],
                     current: RunRecord) -> list[RunRecord]:
    """Earlier records comparable to ``current`` (same kind+fingerprint)."""
    return [
        r for r in records
        if r.run_id != current.run_id
        and r.kind == current.kind
        and r.fingerprint == current.fingerprint
        and (not current.run_id or r.run_id < current.run_id)
    ]


def select_baseline(records: Sequence[RunRecord], current: RunRecord,
                    n: int = Thresholds.baseline_n) -> list[RunRecord]:
    """The last ``n`` matching runs (the median inputs), oldest first."""
    history = matching_history(records, current)
    return history[-n:] if n > 0 else []


def _wall_regressed(current: float, baseline: float,
                    thresholds: Thresholds) -> bool:
    excess = current - baseline
    return (excess > thresholds.wall_abs_s
            and current > baseline * (1.0 + thresholds.wall_frac))


def _pct(current: float, baseline: float) -> str:
    if baseline <= 0:
        return "n/a"
    return f"{(current / baseline - 1.0) * 100.0:+.0f}%"


def compare(current: RunRecord, baselines: Sequence[RunRecord],
            thresholds: Thresholds = Thresholds()) -> RegressionReport:
    """Compare one run against the median of its baseline runs."""
    report = RegressionReport(
        current_id=current.run_id,
        current_label=current.label or current.kind,
        baseline_ids=[b.run_id for b in baselines],
    )
    if not baselines:
        return report
    findings: list[Finding] = []

    # Host context: wall-time baselines from a different machine or
    # interpreter are noise, so cross-host comparisons warn instead of
    # silently mixing (git_dirty churns within one machine; ignored).
    identity = ("python", "numpy", "platform", "machine", "node",
                "cpu_count")
    cur_host = {k: current.host.get(k) for k in identity}
    if any(v is not None for v in cur_host.values()):
        report.checks += 1
        foreign = []
        for baseline in baselines:
            base_host = {k: baseline.host.get(k) for k in identity}
            if any(v is not None for v in base_host.values()) \
                    and base_host != cur_host:
                moved = sorted(k for k in identity
                               if base_host[k] != cur_host[k])
                foreign.append((baseline.run_id, moved))
        if foreign:
            moved = sorted({k for _, keys in foreign for k in keys})
            findings.append(Finding(
                kind="host_mismatch", key=",".join(moved),
                severity="warn",
                current=float(len(foreign)),
                baseline=float(len(baselines)),
                detail=f"{len(foreign)} of {len(baselines)} baseline "
                       f"run(s) came from a different host "
                       f"({', '.join(moved)} changed); wall-time "
                       f"comparisons are unreliable",
            ))

    # Total wall time.
    base_wall = _median([b.wall_s for b in baselines])
    report.checks += 1
    if _wall_regressed(current.wall_s, base_wall, thresholds):
        findings.append(Finding(
            kind="total_wall", key="run", severity="fail",
            current=current.wall_s, baseline=base_wall,
            detail=f"{current.wall_s:.4f} s vs {base_wall:.4f} s "
                   f"({_pct(current.wall_s, base_wall)})",
        ))

    # Per-stage wall times, compared like-for-like on cache-hit status.
    for stage in current.stages:
        name = stage.get("name")
        hit = bool(stage.get("cache_hit"))
        peers = [
            float(s.get("wall_s", 0.0))
            for b in baselines for s in b.stages
            if s.get("name") == name and bool(s.get("cache_hit")) == hit
        ]
        if not peers:
            continue
        report.checks += 1
        wall = float(stage.get("wall_s", 0.0))
        base = _median(peers)
        if _wall_regressed(wall, base, thresholds):
            findings.append(Finding(
                kind="stage_wall", key=str(name), severity="fail",
                current=wall, baseline=base,
                detail=f"{wall:.4f} s vs {base:.4f} s "
                       f"({_pct(wall, base)}"
                       f"{', cached' if hit else ''})",
            ))

    # Cache hit-rate drops across any *.hit_rate metric.
    for key, value in sorted(current.metrics.items()):
        if not key.endswith(".hit_rate"):
            continue
        if not isinstance(value, (int, float)):
            continue
        peers = [
            float(b.metrics[key]) for b in baselines
            if isinstance(b.metrics.get(key), (int, float))
        ]
        if not peers:
            continue
        report.checks += 1
        base = _median(peers)
        if base - float(value) > thresholds.hit_rate_drop:
            findings.append(Finding(
                kind="cache_hit_rate", key=key, severity="fail",
                current=float(value), baseline=base,
                detail=f"{float(value):.1%} vs {base:.1%} baseline",
            ))

    # Paper claims: band escapes fail, in-band drift warns.
    for claim, entry in sorted(current.claims.items()):
        if not isinstance(entry, dict) or "value" not in entry:
            continue
        value = float(entry["value"])
        report.checks += 1
        if not entry.get("ok", True):
            lo, hi = entry.get("lo"), entry.get("hi")
            findings.append(Finding(
                kind="claim_band", key=claim, severity="fail",
                current=value, baseline=value,
                detail=f"value {value:.4g} left tolerance band "
                       f"[{lo}, {hi}]",
            ))
            continue
        peers = [
            float(b.claims[claim]["value"]) for b in baselines
            if isinstance(b.claims.get(claim), dict)
            and "value" in b.claims[claim]
        ]
        if not peers:
            continue
        base = _median(peers)
        scale = max(abs(base), 1e-12)
        if abs(value - base) / scale > thresholds.claim_frac:
            findings.append(Finding(
                kind="claim_drift", key=claim, severity="warn",
                current=value, baseline=base,
                detail=f"value {value:.4g} drifted from baseline "
                       f"median {base:.4g} ({_pct(value, base)})",
            ))

    order = {sev: i for i, sev in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: (order.get(f.severity, 99), f.kind, f.key))
    report.findings = findings
    return report


def regress(records: Sequence[RunRecord],
            current: RunRecord | None = None,
            thresholds: Thresholds = Thresholds()) -> RegressionReport | None:
    """Check the newest (or given) run against its ledger baseline.

    Args:
        records: ledger records, oldest first.
        current: run under test; None picks the newest record.
        thresholds: comparison knobs.

    Returns:
        The report, or None when there is no current run or no earlier
        matching-fingerprint run to build a baseline from.
    """
    if current is None:
        if not records:
            return None
        current = records[-1]
    baselines = select_baseline(records, current, thresholds.baseline_n)
    if not baselines:
        return None
    return compare(current, baselines, thresholds)
