"""Shared test fixtures."""

import pytest

from repro.flows import cache as stage_cache
from repro.obs import ledger as run_ledger


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory, recording off.

    CLI-invoking tests would otherwise write ``.repro_runs/`` records
    into the repository working directory; with the env override every
    test that turns the ledger on (directly or through ``cli.main``)
    lands in its own tmp dir instead.
    """
    monkeypatch.setenv(run_ledger.ENV_DIR, str(tmp_path / "repro_runs"))
    run_ledger.reset_state()
    yield
    run_ledger.reset_state()


@pytest.fixture(autouse=True)
def _cold_stage_cache():
    """Start every test with an empty stage cache.

    The process-global flow stage cache is deliberately warm across runs
    in production, but tests assert on inner-stage spans and metrics
    that a cache replay would (correctly) skip -- so each test gets a
    cold cache and whatever it warms is dropped afterwards.
    """
    stage_cache.reset()
    stage_cache.configure(None)
    stage_cache.set_enabled(True)
    yield
    stage_cache.reset()
    stage_cache.configure(None)
    stage_cache.set_enabled(True)
