"""Monte Carlo sampling of chip speeds under process variation.

Produces the speed *distribution* Section 8 reasons about: every sampled
die gets a delay factor composed of the global variance components plus
the max of many intra-die path draws, and the resulting frequency
population feeds the binning and quoting models.

The intra-die term is sampled *exactly* without materialising the
``count x critical_paths`` matrix of path draws: the maximum of ``k``
iid ``N(0, s)`` variables has CDF ``Phi(x/s)**k``, so one uniform draw
``U`` per die inverts it as ``x = s * Phi^-1(U**(1/k))``.  That turns an
O(count * k) sampling loop into O(count) with the same distribution --
the dominant term of the pre-incremental profile, since the default
component sets model 64 near-critical paths per die.

Sampling is chunked (fixed :data:`CHUNK_SIZE`, per-chunk seeds spawned
from the root seed) and fanned out through :func:`repro.par.sweep
.run_sweep`; because chunk seeding depends only on ``(seed, count)``,
the population is identical for any ``workers`` value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.par.sweep import run_sweep
from repro.variation.components import VariationComponents, VariationError

#: Dies per sweep task.  Fixed (never derived from the worker count) so
#: the chunk seed schedule -- and hence the sampled population -- is a
#: pure function of (seed, count).
CHUNK_SIZE = 8192


@dataclass(frozen=True)
class SpeedDistribution:
    """A sampled population of chip clock frequencies.

    Attributes:
        frequencies_mhz: per-die maximum working frequency, sorted
            ascending.
        nominal_mhz: frequency of a variation-free die.
    """

    frequencies_mhz: np.ndarray
    nominal_mhz: float

    def __post_init__(self) -> None:
        if len(self.frequencies_mhz) == 0:
            raise VariationError("empty distribution")
        if not np.all(np.isfinite(self.frequencies_mhz)):
            raise VariationError("distribution contains non-finite "
                                 "frequencies")

    @property
    def count(self) -> int:
        return len(self.frequencies_mhz)

    def percentile(self, pct: float) -> float:
        """Frequency at a population percentile (0 = slowest die)."""
        if not 0.0 <= pct <= 100.0:
            raise VariationError("percentile must be within [0, 100]")
        return float(np.percentile(self.frequencies_mhz, pct))

    @property
    def median_mhz(self) -> float:
        return self.percentile(50.0)

    @property
    def spread(self) -> float:
        """p99 over p1 frequency ratio -- the shipped-bin spread."""
        return self.percentile(99.0) / self.percentile(1.0)

    def yield_at(self, frequency_mhz: float) -> float:
        """Fraction of dies that work at a given frequency."""
        if frequency_mhz <= 0:
            raise VariationError("frequency must be positive")
        return float(np.mean(self.frequencies_mhz >= frequency_mhz))

    def filtered(
        self,
        min_mhz: float | None = None,
        max_mhz: float | None = None,
    ) -> "SpeedDistribution":
        """Sub-population inside a frequency window.

        Guards the percentile math downstream: a filter that removes
        every sample raises a typed error here instead of letting
        ``np.percentile`` produce NaN from an empty array later.

        Raises:
            VariationError: if no samples survive the filter.
        """
        freqs = self.frequencies_mhz
        if min_mhz is not None:
            freqs = freqs[freqs >= min_mhz]
        if max_mhz is not None:
            freqs = freqs[freqs <= max_mhz]
        if len(freqs) == 0:
            raise VariationError(
                f"no samples remain after filtering to "
                f"[{min_mhz}, {max_mhz}] MHz"
            )
        return SpeedDistribution(
            frequencies_mhz=freqs, nominal_mhz=self.nominal_mhz
        )


# Acklam's rational approximation to the standard normal inverse CDF
# (relative error < 1.2e-9 everywhere) -- scipy's ndtri is not in the
# dependency footprint, and this vectorises cleanly.
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02,
          -2.759285104469687e+02, 1.383577518672690e+02,
          -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02,
          -1.556989798598866e+02, 6.680131188771972e+01,
          -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01,
          -2.400758277161838e+00, -2.549732539343734e+00,
          4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01,
          2.445134137142996e+00, 3.754408661907416e+00)
_PPF_PLOW = 0.02425


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Vectorised standard normal quantile function Phi^-1(p).

    ``p <= 0`` maps to ``-inf`` and ``p >= 1`` to ``+inf`` (the exact
    limits), so downstream clipping sees signed infinities rather than
    the NaNs the raw rational form would produce at the endpoints.
    """
    p = np.asarray(p, dtype=np.float64)
    out = np.empty_like(p)
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    lo = (p > 0.0) & (p < _PPF_PLOW)
    hi = (p > 1.0 - _PPF_PLOW) & (p < 1.0)
    mid = (p >= _PPF_PLOW) & (p <= 1.0 - _PPF_PLOW)
    if lo.any():
        q = np.sqrt(-2.0 * np.log(p[lo]))
        out[lo] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
            + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if hi.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[hi]))
        out[hi] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
            + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
            + 1.0
        )
    out[p <= 0.0] = -np.inf
    out[p >= 1.0] = np.inf
    return out


def _sample_chunk(task: tuple) -> np.ndarray:
    """One sweep task: sample ``size`` dies' frequencies (unsorted)."""
    seed_seq, size, chip_sigma, intra_sigma, paths, nominal = task
    rng = np.random.default_rng(seed_seq)
    global_shift = rng.normal(0.0, chip_sigma, size=size)
    if intra_sigma > 0.0 and paths > 0:
        # max of `paths` iid N(0, s) draws, via inverse-CDF sampling.
        u = rng.random(size)
        intra_max = intra_sigma * _norm_ppf(u ** (1.0 / paths))
        intra_penalty = np.maximum(intra_max, 0.0)
    else:
        intra_penalty = np.zeros(size)
    delay_factor = (1.0 + global_shift) * (1.0 + intra_penalty)
    delay_factor = np.clip(delay_factor, 0.5, 2.0)
    return nominal / delay_factor


def sample_chip_speeds(
    nominal_mhz: float,
    components: VariationComponents,
    count: int = 20000,
    seed: int = 1,
    workers: int = 1,
) -> SpeedDistribution:
    """Sample a die population.

    Per die: ``delay = (1 + N(0, s_global)) * (1 + max_k N(0, s_intra))``
    where the max runs over the die's independent near-critical paths --
    intra-die variation can only slow a chip down, because *some* path
    always loses the lottery.  The max is sampled in closed form (see
    the module docstring) rather than by drawing every path.

    Args:
        nominal_mhz: variation-free design frequency.
        components: variance components.
        count: dies to sample.
        seed: RNG seed (deterministic population, independent of
            ``workers``).
        workers: process count for the sweep (<= 1 runs in-process).
    """
    if not (nominal_mhz > 0) or not math.isfinite(nominal_mhz):
        raise VariationError("nominal frequency must be positive and "
                             "finite")
    if count < 1:
        raise VariationError("need at least one die")
    profiling = obs.enabled()
    start_s = obs.MONOTONIC() if profiling else 0.0
    sizes = [CHUNK_SIZE] * (count // CHUNK_SIZE)
    if count % CHUNK_SIZE:
        sizes.append(count % CHUNK_SIZE)
    seeds = np.random.SeedSequence(seed).spawn(len(sizes))
    tasks = [
        (seed_seq, size, components.chip_level_sigma, components.intra_die,
         components.critical_paths, nominal_mhz)
        for seed_seq, size in zip(seeds, sizes)
    ]
    parts = run_sweep(
        _sample_chunk, tasks, workers=workers,
        label="variation.montecarlo.sweep",
    )
    freqs = np.sort(np.concatenate(parts))
    if profiling:
        elapsed_s = max(obs.MONOTONIC() - start_s, 1e-9)
        obs.count("variation.montecarlo.samples", count)
        obs.observe("variation.montecarlo.samples_per_sec",
                    count / elapsed_s)
    return SpeedDistribution(frequencies_mhz=freqs, nominal_mhz=nominal_mhz)


def sample_chip_speeds_sta(
    module,
    library,
    clock,
    components: VariationComponents,
    count: int = 2000,
    seed: int = 1,
    wire=None,
) -> SpeedDistribution:
    """Netlist-backed die population via batched Monte Carlo STA.

    Where :func:`sample_chip_speeds` models the intra-die lottery with
    the abstract max-of-k closed form, this variant re-times the actual
    netlist per die: every gate arc gets its own Gaussian delay draw
    (sigma = ``components.intra_die``) and the batched array engine
    extracts each die's true critical path, so path depth, reconvergence
    and near-critical structure come from the design instead of a
    ``critical_paths`` knob.  The chip-level component is applied on top
    as a global delay shift, exactly as in the abstract model.

    Args:
        module: netlist to re-time per die.
        library: cell library.
        clock: clock whose period sets the skew/borrow windows.
        components: variance components (``intra_die`` drives the
            per-gate draws, ``chip_level_sigma`` the global shift;
            ``critical_paths`` is unused -- the netlist supplies it).
        count: dies to sample.
        seed: RNG seed (deterministic population).
        wire: optional parasitics.
    """
    # Lazy import: variation is below sta in the layering for the
    # abstract model; only this netlist-backed variant needs the engine.
    from repro.sta.statistical import monte_carlo_min_period

    if count < 1:
        raise VariationError("need at least one die")
    profiling = obs.enabled()
    start_s = obs.MONOTONIC() if profiling else 0.0
    nominal_ps = float(
        monte_carlo_min_period(
            module, library, clock, sigma_fraction=0.0, samples=1,
            seed=seed, wire=wire,
        )[0]
    )
    periods = monte_carlo_min_period(
        module, library, clock, sigma_fraction=components.intra_die,
        samples=count, seed=seed, wire=wire,
    )
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xC41)))
    global_shift = rng.normal(0.0, components.chip_level_sigma, size=count)
    periods = periods * np.clip(1.0 + global_shift, 0.5, 2.0)
    if not (nominal_ps > 0.0) or not np.all(periods > 0.0):
        raise VariationError("sampled periods must be positive")
    freqs = np.sort(1e6 / periods)
    if profiling:
        elapsed_s = max(obs.MONOTONIC() - start_s, 1e-9)
        obs.count("variation.montecarlo.sta_samples", count)
        obs.observe("variation.montecarlo.sta_samples_per_sec",
                    count / elapsed_s)
    return SpeedDistribution(
        frequencies_mhz=freqs, nominal_mhz=1e6 / nominal_ps
    )


def maturity_trend(
    nominal_mhz: float,
    components: VariationComponents,
    quarters: int = 8,
    sigma_decay_per_quarter: float = 0.92,
    speed_gain_per_quarter: float = 1.02,
    count: int = 8000,
    seed: int = 7,
    workers: int = 1,
) -> list[SpeedDistribution]:
    """Model a process maturing over time.

    Each quarter the variance components shrink and the nominal speed
    creeps up (process tweaks, optical shrinks -- Section 8.1.1's Intel
    0.25 um example gained 18% from a 5% shrink mid-generation).
    """
    if quarters < 1:
        raise VariationError("need at least one quarter")
    out = []
    current = components
    nominal = nominal_mhz
    for quarter in range(quarters):
        out.append(
            sample_chip_speeds(nominal, current, count=count,
                               seed=seed + quarter, workers=workers)
        )
        current = current.scaled(sigma_decay_per_quarter)
        nominal *= speed_gain_per_quarter
    return out
