"""Human-readable timing report formatting.

Produces the text reports the examples print: critical path traces with
per-gate delays, endpoint tables, and the FO4-denominated summary the
paper's Section 4 comparisons are written in.
"""

from __future__ import annotations

from repro.sta.engine import TimingReport
from repro.sta.fo4 import fo4_depth, fo4_logic_depth, fo4_overhead
from repro.tech.process import ProcessTechnology


def format_report(
    report: TimingReport,
    tech: ProcessTechnology | None = None,
    max_path_steps: int = 20,
    max_endpoints: int = 5,
) -> str:
    """Render a timing report as a text block."""
    lines = []
    lines.append(
        f"min period {report.min_period_ps:8.1f} ps   "
        f"max frequency {report.max_frequency_mhz:7.1f} MHz"
    )
    if tech is not None:
        lines.append(
            f"FO4 depth   {fo4_depth(report, tech):8.1f}      "
            f"(logic {fo4_logic_depth(report, tech):.1f}, "
            f"overhead {fo4_overhead(report, tech):.1f})"
        )
    crit = report.critical
    lines.append(
        f"binding endpoint: {crit.kind} {crit.name}  "
        f"arrival {crit.data_arrival_ps:.1f} ps"
    )
    lines.append(
        f"  launch clk->Q {crit.launch_overhead_ps:.1f} ps, "
        f"setup {crit.capture_overhead_ps:.1f} ps, "
        f"skew {crit.skew_ps:.1f} ps, borrow {crit.borrow_ps:.1f} ps"
    )
    slack = report.worst_slack_ps()
    lines.append(
        f"at clock {report.clock.name} ({report.clock.period_ps:.1f} ps): "
        f"slack {slack:+.1f} ps "
        f"({'MET' if slack >= 0 else 'VIOLATED'})"
    )
    if report.hold_violations:
        lines.append(f"hold violations: {len(report.hold_violations)}")

    lines.append("critical path:")
    steps = report.critical_path
    shown = steps[-max_path_steps:]
    if len(steps) > len(shown):
        lines.append(f"  ... {len(steps) - len(shown)} earlier gates elided ...")
    for step in shown:
        lines.append(
            f"  {step.instance:<24s} {step.cell:<12s} pin {step.through_pin:<2s}"
            f" +{step.delay_ps:7.1f} ps  @ {step.arrival_ps:8.1f} ps"
        )

    lines.append("worst endpoints:")
    for ep in report.endpoints[:max_endpoints]:
        lines.append(
            f"  {ep.kind:<8s} {ep.name:<28s} "
            f"needs period {ep.min_period_ps:8.1f} ps"
        )
    return "\n".join(lines)


def format_comparison(
    rows: list[tuple[str, TimingReport]],
    tech: ProcessTechnology | None = None,
) -> str:
    """Tabulate several named reports side by side (MHz, period, FO4)."""
    lines = []
    header = f"{'design':<28s} {'MHz':>8s} {'period ps':>10s}"
    if tech is not None:
        header += f" {'FO4':>7s} {'ovh %':>6s}"
    lines.append(header)
    for name, report in rows:
        line = (
            f"{name:<28s} {report.max_frequency_mhz:8.1f} "
            f"{report.min_period_ps:10.1f}"
        )
        if tech is not None:
            line += (
                f" {fo4_depth(report, tech):7.1f}"
                f" {100 * report.overhead_fraction():6.1f}"
            )
        lines.append(line)
    return "\n".join(lines)
