"""Backend-neutral combinatorial optimizers shared by the physical layer."""

from repro.optimize.anneal import AnnealMove, AnnealProblem, anneal

__all__ = [
    "AnnealMove",
    "AnnealProblem",
    "anneal",
]
