"""Ablation -- pre-layout wire load models vs placed reality.

Section 6.2's premise for post-layout resizing: synthesis-time wire
estimates "will differ from that in the final layout".  This bench
quantifies how much: per-net WLM estimates against placed lengths, and
the timing error of signing off on WLM numbers.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import alu
from repro.physical import (
    WLM_SMALL,
    compare_to_placement,
    estimate_parasitics,
    place,
)
from repro.sta import analyze, asic_clock
from repro.tech import CMOS250_ASIC


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    module = alu(8, library, fast_adder=False)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)
    placement = place(module, library, quality="careful", seed=11)
    accuracy = compare_to_placement(module, placement, WLM_SMALL)
    wlm_period = analyze(
        module, library, clock,
        wire=estimate_parasitics(module, CMOS250_ASIC, WLM_SMALL),
    ).min_period_ps
    placed_period = analyze(
        module, library, clock, wire=placement.parasitics(library)
    ).min_period_ps
    return accuracy, wlm_period, placed_period


def test_ablation_wlm(benchmark):
    accuracy, wlm_period, placed_period = run_once(benchmark, _measure)
    rows = [
        row("per-net estimate spread (max/min ratio)", "order of magnitude",
            accuracy.worst_overestimate / accuracy.worst_underestimate,
            3.0, 1e4, fmt="{:.0f}x"),
        row("mean estimate/placed ratio", "biased but bounded",
            accuracy.mean_ratio, 0.2, 20.0),
        row("timing signed off on WLM vs placed", "differs",
            wlm_period / placed_period, 0.5, 2.0),
    ]
    print()
    print(f"nets compared: {accuracy.nets_compared}")
    report("Ablation: wire load models vs placed wire lengths", rows)
    for entry in rows:
        assert entry.ok, entry
