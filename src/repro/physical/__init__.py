"""Physical design substrate: floorplanning, placement, wires, clock trees."""

from repro.physical.clocktree import (
    ASIC_SEGMENT_MISMATCH,
    CUSTOM_SEGMENT_MISMATCH,
    ClockTree,
    asic_clock_tree,
    build_h_tree,
    custom_clock_tree,
)
from repro.physical.floorplan import (
    Block,
    Floorplan,
    FloorplanResult,
    SlicingFloorplanner,
)
from repro.physical.geometry import (
    GeometryError,
    Point,
    Rect,
    bounding_box,
    half_perimeter_wirelength,
)
from repro.physical.placement import Placement, ROUTE_DETOUR, place
from repro.physical.routing import (
    CongestionModel,
    routed_lengths_um,
    steiner_length_um,
    total_routed_length_um,
)
from repro.physical.wlm import (
    WLM_LARGE,
    WLM_MEDIUM,
    WLM_SMALL,
    WireLoadModel,
    WlmAccuracy,
    compare_to_placement,
    estimate_parasitics,
    select_wlm,
)
from repro.physical.wires import (
    ChipWireModel,
    RepeaterPlan,
    optimal_repeater_plan,
    optimal_segment_um,
    unrepeated_wire_delay_ps,
    wire_delay_ps,
)

__all__ = [
    "WLM_LARGE",
    "WLM_MEDIUM",
    "WLM_SMALL",
    "WireLoadModel",
    "WlmAccuracy",
    "compare_to_placement",
    "estimate_parasitics",
    "select_wlm",
    "ASIC_SEGMENT_MISMATCH",
    "Block",
    "ChipWireModel",
    "ClockTree",
    "CongestionModel",
    "CUSTOM_SEGMENT_MISMATCH",
    "Floorplan",
    "FloorplanResult",
    "GeometryError",
    "Placement",
    "Point",
    "ROUTE_DETOUR",
    "Rect",
    "RepeaterPlan",
    "SlicingFloorplanner",
    "asic_clock_tree",
    "bounding_box",
    "build_h_tree",
    "custom_clock_tree",
    "half_perimeter_wirelength",
    "optimal_repeater_plan",
    "optimal_segment_um",
    "place",
    "routed_lengths_um",
    "steiner_length_um",
    "total_routed_length_um",
    "unrepeated_wire_delay_ps",
    "wire_delay_ps",
]
