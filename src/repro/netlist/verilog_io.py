"""Minimal structural-Verilog writer and reader.

Only the flat gate-level subset our tools produce is supported::

    module adder (a, b, s);
      input a;
      input b;
      output s;
      wire n0;
      XOR2_X1 u1 (.A(a), .B(b), .Y(n0));
      BUF_X2 u2 (.A(n0), .Y(s));
    endmodule

The writer/reader pair round-trips every module the generators in
:mod:`repro.datapath` and the mapper in :mod:`repro.synth` emit, which is
what the examples use to hand netlists between flow stages on disk.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.netlist.module import Module
from repro.netlist.nets import NetlistError


def to_verilog(module: Module, cell_output_pins: dict[str, set[str]] | None = None) -> str:
    """Serialise a module to structural Verilog text.

    Args:
        module: the netlist to serialise.
        cell_output_pins: unused; accepted for API symmetry with
            :func:`from_verilog`, which needs pin directions to rebuild.
    """
    lines: list[str] = []
    port_names = list(module.ports)
    lines.append(f"module {module.name} ({', '.join(port_names)});")
    for port in module.ports.values():
        lines.append(f"  {port.direction.value} {port.name};")
    internal = sorted(set(module.nets) - set(module.ports))
    for net in internal:
        lines.append(f"  wire {net};")
    for inst in module.iter_instances():
        conns = []
        for pin in sorted(inst.inputs):
            conns.append(f".{pin}({inst.inputs[pin]})")
        for pin in sorted(inst.outputs):
            conns.append(f".{pin}({inst.outputs[pin]})")
        lines.append(f"  {inst.cell_name} {inst.name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(r"module\s+(?P<name>[\w$\[\].]+)\s*\((?P<ports>[^)]*)\)\s*;")
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<names>[^;]+);")
_INST_RE = re.compile(
    r"(?P<cell>[\w$\[\].]+)\s+(?P<inst>[\w$\[\].]+)\s*\((?P<conns>[^;]*)\)\s*;"
)
_CONN_RE = re.compile(r"\.(?P<pin>[\w$\[\].]+)\s*\(\s*(?P<net>[\w$\[\].]+)\s*\)")


def from_verilog(text: str, output_pins: dict[str, set[str]]) -> Module:
    """Parse structural Verilog back into a :class:`Module`.

    Because structural Verilog does not record pin directions, the caller
    must supply ``output_pins``: for each cell name, the set of pins that
    are outputs.  :meth:`repro.cells.library.CellLibrary.output_pin_map`
    produces exactly this.

    Raises:
        NetlistError: on malformed input or unknown cells.
    """
    text = _strip_comments(text)
    header = _MODULE_RE.search(text)
    if header is None:
        raise NetlistError("no module header found")
    module = Module(header.group("name"))
    body = text[header.end():]
    end = body.find("endmodule")
    if end < 0:
        raise NetlistError(f"module {module.name}: missing endmodule")
    body = body[:end]

    declared: dict[str, str] = {}
    for match in _DECL_RE.finditer(body):
        kind = match.group("kind")
        for name in _split_names(match.group("names")):
            declared[name] = kind
    for name, kind in declared.items():
        if kind == "input":
            module.add_input(name)
        elif kind == "output":
            module.add_output(name)
        else:
            module.add_net(name)

    decl_free = _DECL_RE.sub("", body)
    for match in _INST_RE.finditer(decl_free):
        cell = match.group("cell")
        if cell not in output_pins:
            raise NetlistError(f"unknown cell {cell!r}; no pin direction info")
        outs = output_pins[cell]
        inputs: dict[str, str] = {}
        outputs: dict[str, str] = {}
        for conn in _CONN_RE.finditer(match.group("conns")):
            pin, net = conn.group("pin"), conn.group("net")
            if pin in outs:
                outputs[pin] = net
            else:
                inputs[pin] = net
        module.add_instance(match.group("inst"), cell, inputs=inputs, outputs=outputs)
    return module


def _split_names(raw: str) -> list[str]:
    return [n.strip() for n in raw.split(",") if n.strip()]


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
