"""Control logic vs datapath: what pipelining can and cannot fix.

Section 4.1's dichotomy, live: a bus-interface FSM (tight environment
interaction, fresh inputs every cycle) is synthesised and shown to be
pinned by its state-feedback loop, while a datapath of similar size
pipelines to several times its base throughput.

Run with::

    python examples/control_vs_datapath.py
"""

from repro.cells import rich_asic_library
from repro.datapath import ripple_carry_adder
from repro.pipeline import (
    PipelineError,
    make_retiming_graph,
    opt_period,
    pipeline_module,
)
from repro.sta import asic_clock, fo4_depth, solve_min_period
from repro.synth import simulate_sequential
from repro.synth.fsm import bus_interface_spec, synthesize_fsm
from repro.tech import CMOS250_ASIC


def main() -> None:
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(40.0 * CMOS250_ASIC.fo4_delay_ps)

    print("1. Synthesising the bus-interface FSM (Section 4.1's example):")
    spec = bus_interface_spec()
    fsm = synthesize_fsm(spec, library)
    timing = solve_min_period(fsm, library, clock)
    print(f"   {len(spec.states)} states, {fsm.instance_count()} gates, "
          f"cycle {fo4_depth(timing, CMOS250_ASIC):.1f} FO4 "
          f"({timing.max_frequency_mhz:.0f} MHz)")

    print()
    print("2. Driving it through a bus transaction:")
    stream = [
        {"req": True, "gnt": False, "err": False, "last": False},
        {"req": False, "gnt": True, "err": False, "last": False},
        {"req": False, "gnt": False, "err": False, "last": False},
        {"req": False, "gnt": False, "err": False, "last": True},
        {"req": False, "gnt": False, "err": False, "last": False},
    ]
    reference = spec.simulate(stream)
    trace = simulate_sequential(fsm, library, stream)
    for cycle, ((state, _), outputs) in enumerate(zip(reference, trace)):
        flags = " ".join(
            f"{k}={int(v)}" for k, v in sorted(outputs.items())
        )
        print(f"   cycle {cycle}: state {state:<5s} {flags}")

    print()
    print("3. Trying to pipeline it:")
    try:
        pipeline_module(fsm, library, stages=2)
    except PipelineError as exc:
        print(f"   pipeliner refuses: {exc}")
    graph = make_retiming_graph(
        {"ns": timing.logic_delay_ps, "reg": 0.0},
        [("reg", "ns", 0), ("ns", "reg", 1)],
    )
    result = opt_period(graph)
    print(f"   retiming bound: {result.original_period:.0f} ps -> "
          f"{result.period:.0f} ps ({result.speedup:.2f}x -- the feedback "
          "cycle is the wall)")

    print()
    print("4. The contrast -- a 10-bit adder datapath:")
    base = solve_min_period(
        pipeline_module(ripple_carry_adder(10, library), library, 1).module,
        library, clock,
    ).min_period_ps
    for stages in (2, 4):
        piped = solve_min_period(
            pipeline_module(
                ripple_carry_adder(10, library), library, stages
            ).module,
            library, clock,
        ).min_period_ps
        print(f"   {stages} stages: {base / piped:.2f}x faster clock")
    print()
    print("Section 4.1: 'If processing the data is interdependent, there is")
    print("little that can be done to pipeline ASIC designs.  If data can")
    print("be processed in parallel ... the speed [increases] significantly.'")


if __name__ == "__main__":
    main()
