"""Synthetic standard-cell library generators.

The paper's library-quality arguments (Sections 6 and 7) are reproduced by
generating *families* of libraries from one set of gate templates:

* :func:`rich_asic_library` -- many drive strengths, dual polarities,
  complex gates: the "good standard cell library" of Section 6.2.
* :func:`poor_asic_library` -- two drive strengths, single polarity, no
  complex gates: the library the paper says "may be 25% slower".
* :func:`custom_library` -- a continuous-sizing factory plus low-overhead
  sequential elements: the custom designer's unconstrained menu.
* :func:`domino_library` -- non-inverting dynamic gates with the lower
  logical effort and parasitics that make domino "50% to 100% faster than
  static CMOS combinational logic" (Section 7.1).

All delays derive from the technology's FO4 calibration, so every library
is consistent with the paper's FO4 arithmetic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.cell import (
    Cell,
    CellError,
    CellKind,
    InputPin,
    LogicFamily,
    SequentialTiming,
)
from repro.cells.delay import LinearDelayArc, NLDMArc
from repro.cells.library import CellLibrary
from repro.tech.process import ProcessTechnology


@dataclass(frozen=True)
class GateTemplate:
    """Electrical and logical description of one gate function.

    Attributes:
        base_name: function family name, e.g. ``"NAND2"``.
        function: boolean expression over the pin names.
        pin_efforts: logical effort g per input pin (Sutherland values for
            the static templates).
        parasitic: parasitic delay p in units of tau.
        inverting: polarity of the function.
        monotone: True if the function is monotone in all inputs (domino
            realisable, Section 7.1's glitch constraint).
    """

    base_name: str
    function: str
    pin_efforts: dict[str, float]
    parasitic: float
    inverting: bool
    monotone: bool = True


def _t(base, function, efforts, p, inverting, monotone=True) -> GateTemplate:
    return GateTemplate(base, function, efforts, p, inverting, monotone)


#: Static CMOS gate templates with textbook logical-effort parameters.
STATIC_TEMPLATES: dict[str, GateTemplate] = {
    t.base_name: t
    for t in [
        _t("INV", "~A", {"A": 1.0}, 1.0, True),
        _t("BUF", "A", {"A": 1.0}, 2.0, False),
        _t("NAND2", "~(A & B)", {"A": 4 / 3, "B": 4 / 3}, 2.0, True),
        _t("NAND3", "~(A & B & C)", {"A": 5 / 3, "B": 5 / 3, "C": 5 / 3}, 3.0, True),
        _t("NAND4", "~(A & B & C & D)",
           {"A": 2.0, "B": 2.0, "C": 2.0, "D": 2.0}, 4.0, True),
        _t("NOR2", "~(A | B)", {"A": 5 / 3, "B": 5 / 3}, 2.0, True),
        _t("NOR3", "~(A | B | C)", {"A": 7 / 3, "B": 7 / 3, "C": 7 / 3}, 3.0, True),
        _t("NOR4", "~(A | B | C | D)",
           {"A": 3.0, "B": 3.0, "C": 3.0, "D": 3.0}, 4.0, True),
        _t("AND2", "A & B", {"A": 1.5, "B": 1.5}, 3.0, False),
        _t("AND3", "A & B & C", {"A": 1.8, "B": 1.8, "C": 1.8}, 4.0, False),
        _t("AND4", "A & B & C & D",
           {"A": 2.1, "B": 2.1, "C": 2.1, "D": 2.1}, 5.0, False),
        _t("OR2", "A | B", {"A": 1.8, "B": 1.8}, 3.0, False),
        _t("OR3", "A | B | C", {"A": 2.4, "B": 2.4, "C": 2.4}, 4.0, False),
        _t("OR4", "A | B | C | D",
           {"A": 3.2, "B": 3.2, "C": 3.2, "D": 3.2}, 5.0, False),
        _t("XOR2", "A ^ B", {"A": 4.0, "B": 4.0}, 4.0, False, monotone=False),
        _t("XNOR2", "~(A ^ B)", {"A": 4.0, "B": 4.0}, 4.0, True, monotone=False),
        _t("AOI21", "~((A & B) | C)", {"A": 2.0, "B": 2.0, "C": 5 / 3}, 2.5, True),
        _t("OAI21", "~((A | B) & C)", {"A": 2.0, "B": 2.0, "C": 5 / 3}, 2.5, True),
        _t("MUX2", "(A & ~S) | (B & S)",
           {"A": 2.0, "B": 2.0, "S": 4.0}, 4.0, False, monotone=False),
    ]
}

#: Domino gate templates: non-inverting, monotone, lower g and p.
#: Section 7.1: dynamic gates evaluate through an NMOS-only network, so
#: their logical effort is roughly half a static gate's and parasitics
#: shrink with it.  Wide-OR structures are domino's signature strength.
DOMINO_TEMPLATES: dict[str, GateTemplate] = {
    t.base_name: t
    for t in [
        _t("DBUF", "A", {"A": 2 / 3}, 0.8, False),
        _t("DAND2", "A & B", {"A": 2 / 3, "B": 2 / 3}, 1.0, False),
        _t("DAND3", "A & B & C", {"A": 0.8, "B": 0.8, "C": 0.8}, 1.3, False),
        _t("DAND4", "A & B & C & D",
           {"A": 1.0, "B": 1.0, "C": 1.0, "D": 1.0}, 1.6, False),
        _t("DOR2", "A | B", {"A": 2 / 3, "B": 2 / 3}, 1.0, False),
        _t("DOR3", "A | B | C", {"A": 0.7, "B": 0.7, "C": 0.7}, 1.2, False),
        _t("DOR4", "A | B | C | D",
           {"A": 0.75, "B": 0.75, "C": 0.75, "D": 0.75}, 1.4, False),
        _t("DOR8", "A | B | C | D | E | F | G | H",
           {k: 0.9 for k in "ABCDEFGH"}, 2.0, False),
        _t("DAO21", "(A & B) | C", {"A": 0.9, "B": 0.9, "C": 0.75}, 1.3, False),
        _t("DMAJ3", "(A & B) | (B & C) | (A & C)",
           {"A": 1.0, "B": 1.0, "C": 1.0}, 1.5, False),
    ]
}


@dataclass(frozen=True)
class SequentialSpec:
    """Flip-flop/latch timing in FO4 units (technology-portable).

    Section 4.1 calibration: an ASIC flop burns noticeably more of the
    cycle than a custom one, because ASIC cells carry guard banding
    ("buffering flip-flops, which introduce overhead") and must tolerate
    worse skew; custom latches may absorb logic and are hand-tuned
    (15% of the Alpha's 15-FO4 cycle is its latch overhead).
    """

    setup_fo4: float = 1.2
    hold_fo4: float = 0.3
    clk_to_q_fo4: float = 1.8

    def to_timing(
        self, fo4_ps: float, clock_pin: str = "CK", transparent: bool = False
    ) -> SequentialTiming:
        """Convert to absolute picoseconds for a given FO4 delay."""
        return SequentialTiming(
            setup_ps=self.setup_fo4 * fo4_ps,
            hold_ps=self.hold_fo4 * fo4_ps,
            clk_to_q_ps=self.clk_to_q_fo4 * fo4_ps,
            clock_pin=clock_pin,
            transparent=transparent,
        )

    @property
    def overhead_fo4(self) -> float:
        return self.setup_fo4 + self.clk_to_q_fo4


#: ASIC-class flop: ~3 FO4 of setup + clk->Q overhead.
ASIC_FLOP = SequentialSpec(setup_fo4=1.2, hold_fo4=0.3, clk_to_q_fo4=1.8)
#: Custom-class flop: ~2 FO4 of overhead (hand-designed, logic absorbed).
CUSTOM_FLOP = SequentialSpec(setup_fo4=0.8, hold_fo4=0.1, clk_to_q_fo4=1.2)
#: Level-sensitive latch (enables time borrowing, Section 4.1).
ASIC_LATCH = SequentialSpec(setup_fo4=0.6, hold_fo4=0.3, clk_to_q_fo4=1.0)
CUSTOM_LATCH = SequentialSpec(setup_fo4=0.4, hold_fo4=0.1, clk_to_q_fo4=0.7)


@dataclass(frozen=True)
class LibrarySpec:
    """Recipe for generating a library.

    Attributes:
        name: library name stem.
        drives: discrete drive strengths to emit per function.
        bases: which gate templates to include (None = all of the family).
        family: static or domino.
        use_nldm: tabulate arcs into NLDM tables instead of linear arcs.
        flop: flip-flop timing spec (None omits flops).
        latch: latch timing spec (None omits latches).
        continuous: install a continuous-sizing factory (custom style).
        guard_band: multiplier >= 1 applied to all delays, modelling ASIC
            cell guard banding (Section 6.1).
    """

    name: str
    drives: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)
    bases: tuple[str, ...] | None = None
    family: LogicFamily = LogicFamily.STATIC
    use_nldm: bool = False
    flop: SequentialSpec | None = ASIC_FLOP
    latch: SequentialSpec | None = ASIC_LATCH
    continuous: bool = False
    guard_band: float = 1.0


def _drive_suffix(drive: float) -> str:
    if float(drive).is_integer():
        return f"X{int(drive)}"
    return "X" + f"{drive:.2f}".replace(".", "p")


def make_combinational_cell(
    tech: ProcessTechnology,
    template: GateTemplate,
    drive: float,
    family: LogicFamily = LogicFamily.STATIC,
    use_nldm: bool = False,
    guard_band: float = 1.0,
) -> Cell:
    """Characterise one gate template at one drive strength.

    The logical-effort identities used:

    * input pin capacitance = g_pin * drive * C_unit;
    * effort delay per fF   = tau / (drive * C_unit);
    * parasitic delay       = p * tau.
    """
    if drive <= 0:
        raise CellError("drive must be positive")
    if guard_band < 1.0:
        raise CellError("guard band cannot be below 1.0")
    tau = tech.tau_ps
    unit_cap = tech.unit_input_cap_ff
    inputs = {}
    arcs = {}
    for pin, g in template.pin_efforts.items():
        inputs[pin] = InputPin(name=pin, cap_ff=g * drive * unit_cap,
                               logical_effort=g)
        linear = LinearDelayArc(
            parasitic_ps=template.parasitic * tau * guard_band,
            effort_ps_per_ff=tau * guard_band / (drive * unit_cap),
        )
        max_load = 16.0 * drive * unit_cap
        arcs[pin] = (
            NLDMArc.from_linear(linear, max_load_ff=max_load)
            if use_nldm
            else linear
        )
    n = len(template.pin_efforts)
    return Cell(
        name=f"{template.base_name}_{_drive_suffix(drive)}",
        base_name=template.base_name,
        drive=drive,
        function=template.function,
        inputs=inputs,
        output="Y",
        max_load_ff=16.0 * drive * unit_cap,
        area_um2=(2.0 + 1.5 * n) * drive * tech.unit_nmos_width_um,
        arcs=arcs,
        family=family,
        kind=CellKind.COMBINATIONAL,
        inverting=template.inverting,
    )


def make_flip_flop(
    tech: ProcessTechnology,
    drive: float,
    spec: SequentialSpec,
    guard_band: float = 1.0,
) -> Cell:
    """A D flip-flop cell with FO4-calibrated timing."""
    unit_cap = tech.unit_input_cap_ff
    timing = spec.to_timing(tech.fo4_delay_ps * guard_band)
    return Cell(
        name=f"DFF_{_drive_suffix(drive)}",
        base_name="DFF",
        drive=drive,
        function="",
        inputs={
            "D": InputPin("D", cap_ff=1.2 * drive * unit_cap),
            "CK": InputPin("CK", cap_ff=1.0 * unit_cap),
        },
        output="Q",
        max_load_ff=16.0 * drive * unit_cap,
        area_um2=18.0 * drive * tech.unit_nmos_width_um,
        arcs={},
        kind=CellKind.FLIP_FLOP,
        sequential=timing,
    )


def make_latch(
    tech: ProcessTechnology,
    drive: float,
    spec: SequentialSpec,
    guard_band: float = 1.0,
) -> Cell:
    """A level-sensitive latch cell (transparent-high)."""
    unit_cap = tech.unit_input_cap_ff
    timing = spec.to_timing(
        tech.fo4_delay_ps * guard_band, clock_pin="G", transparent=True
    )
    return Cell(
        name=f"LATCH_{_drive_suffix(drive)}",
        base_name="LATCH",
        drive=drive,
        function="",
        inputs={
            "D": InputPin("D", cap_ff=1.0 * drive * unit_cap),
            "G": InputPin("G", cap_ff=0.8 * unit_cap),
        },
        output="Q",
        max_load_ff=16.0 * drive * unit_cap,
        area_um2=10.0 * drive * tech.unit_nmos_width_um,
        arcs={},
        kind=CellKind.LATCH,
        sequential=timing,
    )


@dataclass(frozen=True)
class ContinuousFactory:
    """Continuous-sizing cell factory for a library.

    A class rather than a closure so libraries stay picklable: the flow
    stage cache and checkpoint files snapshot libraries, and a closure
    over ``tech`` would make the whole library refuse to pickle.
    """

    tech: ProcessTechnology
    family: LogicFamily
    guard_band: float

    def __call__(self, base_name: str, drive: float) -> Cell:
        templates = (
            DOMINO_TEMPLATES if self.family is LogicFamily.DOMINO
            else STATIC_TEMPLATES
        )
        return make_combinational_cell(
            self.tech, templates[base_name], drive,
            family=self.family, guard_band=self.guard_band,
        )


def build_library(tech: ProcessTechnology, spec: LibrarySpec) -> CellLibrary:
    """Generate a full library from a recipe."""
    templates = (
        DOMINO_TEMPLATES if spec.family is LogicFamily.DOMINO else STATIC_TEMPLATES
    )
    bases = spec.bases if spec.bases is not None else tuple(sorted(templates))
    cells = []
    for base in bases:
        try:
            template = templates[base]
        except KeyError:
            raise CellError(
                f"no template {base!r} in {spec.family.value} family; "
                f"known: {sorted(templates)}"
            ) from None
        for drive in spec.drives:
            cells.append(
                make_combinational_cell(
                    tech, template, drive,
                    family=spec.family,
                    use_nldm=spec.use_nldm,
                    guard_band=spec.guard_band,
                )
            )
    seq_drives = [d for d in spec.drives if d <= 8.0] or [spec.drives[0]]
    if spec.flop is not None:
        for drive in seq_drives:
            cells.append(make_flip_flop(tech, drive, spec.flop, spec.guard_band))
    if spec.latch is not None:
        for drive in seq_drives:
            cells.append(make_latch(tech, drive, spec.latch, spec.guard_band))

    factory = None
    if spec.continuous:
        factory = ContinuousFactory(tech, spec.family, spec.guard_band)

    return CellLibrary(
        name=f"{spec.name}_{tech.name}",
        technology=tech,
        cells=cells,
        continuous_factory=factory,
    )


# ----------------------------------------------------------------------
# The four canonical libraries of the reproduction
# ----------------------------------------------------------------------

def rich_asic_library(
    tech: ProcessTechnology, use_nldm: bool = False
) -> CellLibrary:
    """Well-stocked ASIC library: many drives, dual polarity, complex gates.

    Section 6.2: "ASIC designs should be using standard cell libraries
    with dual gate polarities and several drive sizes of each gate."
    """
    return build_library(
        tech,
        LibrarySpec(
            name="asic_rich",
            drives=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
            use_nldm=use_nldm,
            guard_band=1.05,
        ),
    )


#: Function subset available in the impoverished library: inverting gates
#: only (no dual polarity) and no complex cells.
POOR_BASES = ("INV", "NAND2", "NAND3", "NOR2", "NOR3", "XOR2")


def poor_asic_library(tech: ProcessTechnology) -> CellLibrary:
    """Impoverished ASIC library: two drives, single polarity, guard-banded.

    This is the library of Section 6.1's claim: "a cell library with only
    two drive strengths may be 25% slower than an ASIC library with a rich
    selection of drive strengths ... as well as dual polarities".
    """
    return build_library(
        tech,
        LibrarySpec(
            name="asic_poor",
            drives=(1.0, 4.0),
            bases=POOR_BASES,
            # Same guard band as the rich library so measurements isolate
            # drive richness and polarity, which is what the 25% claim is
            # about.
            guard_band=1.05,
        ),
    )


def custom_library(tech: ProcessTechnology) -> CellLibrary:
    """Custom designer's library: continuous sizing, low-overhead registers.

    Section 6: "In an ideal design, each circuit is optimally crafted from
    transistors and each transistor is individually sized ... Only in a
    custom design methodology can this ideal be realized."
    """
    return build_library(
        tech,
        LibrarySpec(
            name="custom",
            drives=(1.0, 1.4, 2.0, 2.8, 4.0, 5.7, 8.0, 11.3, 16.0, 22.6, 32.0),
            flop=CUSTOM_FLOP,
            latch=CUSTOM_LATCH,
            continuous=True,
            guard_band=1.0,
        ),
    )


def domino_library(tech: ProcessTechnology) -> CellLibrary:
    """Dynamic-logic library for critical paths (Section 7).

    Combinational gates are domino; the registers are custom-class since
    domino design is a custom methodology ("dynamic logic libraries are
    not available for ASIC design").
    """
    return build_library(
        tech,
        LibrarySpec(
            name="domino",
            drives=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            family=LogicFamily.DOMINO,
            flop=CUSTOM_FLOP,
            latch=CUSTOM_LATCH,
            continuous=True,
            guard_band=1.0,
        ),
    )
