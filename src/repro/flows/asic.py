"""The ASIC implementation flow.

The standard-cell methodology as the paper describes it: RTL-ish entry,
mapping onto a fixed library, automatic placement, discrete post-layout
sizing, a synthesised (10%-class) clock tree, and -- crucially, Section 8
-- a worst-case-corner frequency quote rather than typical-silicon
performance.  Every lever the paper says ASICs lack is an option here so
the benchmarks can turn them on one at a time and price them.

Failure policy: with the default ``on_error="raise"`` any stage failure
surfaces as a :class:`FlowError` naming the stage and chaining the root
cause; with ``on_error="keep_going"`` failed stages are recorded into
``FlowResult.diagnostics`` and the flow continues on best-effort
fallbacks (see :mod:`repro.robust.degrade`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.cells.builder import poor_asic_library, rich_asic_library
from repro.datapath.alu import alu
from repro.datapath.adders import kogge_stone_adder, ripple_carry_adder
from repro.datapath.cpu import cpu_execute_stage
from repro.datapath.multiplier import array_multiplier, wallace_multiplier
from repro.flows.results import FlowError, FlowResult
from repro.physical.placement import place
from repro.pipeline.pipeliner import pipeline_module
from repro.robust.degrade import StageRunner, fallback_timing
from repro.robust.faults import maybe_trip
from repro.robust.guards import (
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import preflight
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import total_area_um2
from repro.sta.clocking import asic_clock
from repro.sta.fo4 import fo4_depth, fo4_logic_depth
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_ASIC, ProcessTechnology
from repro.variation.binning import asic_worst_case_quote, speed_tested_quote
from repro.variation.components import MATURE_PROCESS
from repro.variation.montecarlo import sample_chip_speeds

#: Named workload generators: (callable(bits, library), description).
WORKLOADS = {
    "alu": lambda bits, lib: alu(bits, lib, fast_adder=False),
    "alu_macro": lambda bits, lib: alu(bits, lib, fast_adder=True),
    "adder_ripple": ripple_carry_adder,
    "adder_kogge_stone": kogge_stone_adder,
    "multiplier_array": array_multiplier,
    "multiplier_wallace": wallace_multiplier,
    "cpu": lambda bits, lib: cpu_execute_stage(bits, lib, fast_adder=False),
    "cpu_macro": lambda bits, lib: cpu_execute_stage(
        bits, lib, fast_adder=True
    ),
}


@dataclass(frozen=True)
class AsicFlowOptions:
    """Knobs of the ASIC flow.

    Attributes:
        workload: one of :data:`WORKLOADS`.
        bits: datapath width.
        pipeline_stages: 1 = registered boundaries only.
        rich_library: rich vs two-drive impoverished library (Section 6).
        careful_placement: good floorplanning/placement vs scatter
            (Section 5).
        sizing_moves: post-layout resizing budget (Section 6.2; 0 = skip).
        speed_test: at-speed test instead of worst-case quote (Sec. 8.3).
        seed: placement RNG seed.
        on_error: ``"raise"`` aborts on the first stage failure;
            ``"keep_going"`` records the failure into the result's
            diagnostics and degrades gracefully.
        fault: chaos hook -- name of a stage at which to trip an
            injected fault (testing/selftest only; None = off).
    """

    workload: str = "alu"
    bits: int = 8
    pipeline_stages: int = 1
    rich_library: bool = True
    careful_placement: bool = True
    sizing_moves: int = 30
    speed_test: bool = False
    seed: int = 1
    on_error: str = "raise"
    fault: str | None = None


def run_asic_flow(
    options: AsicFlowOptions = AsicFlowOptions(),
    tech: ProcessTechnology = CMOS250_ASIC,
) -> FlowResult:
    """Run the full ASIC flow and return its result record.

    Raises:
        FlowError: for unknown workloads, inconsistent options, or --
            under ``on_error="raise"`` -- any stage failure (with the
            stage name attached and the cause chained).
    """
    if options.workload not in WORKLOADS:
        raise FlowError(
            f"unknown workload {options.workload!r}; "
            f"known: {sorted(WORKLOADS)}",
            stage="map",
        )
    runner = StageRunner(flow="asic", on_error=options.on_error)
    with obs.span("flow.asic", workload=options.workload,
                  bits=options.bits) as flow_span:
        with runner.stage("map", critical=True), \
                obs.span("flow.asic.map") as sp:
            maybe_trip(options.fault, "map")
            library = (
                rich_asic_library(tech)
                if options.rich_library
                else poor_asic_library(tech)
            )
            comb = WORKLOADS[options.workload](options.bits, library)

            if options.pipeline_stages > 1:
                report = pipeline_module(
                    comb, library, options.pipeline_stages
                )
                module = report.module
                stages = report.stages
            else:
                module = register_boundaries(comb, library)
                stages = 1
            sp.set(cells=module.instance_count(), stages=stages,
                   library=library.name)

        placement = None
        wire = None
        with runner.stage("place"), obs.span("flow.asic.place") as sp:
            maybe_trip(options.fault, "place")
            quality = "careful" if options.careful_placement else "sloppy"
            placement = place(
                module, library, quality=quality, seed=options.seed
            )
            wire = placement.parasitics(library)
            sp.set(quality=quality,
                   wirelength_um=placement.total_wirelength_um())

        notes: dict[str, float] = {
            "wirelength_um": (
                placement.total_wirelength_um() if placement else 0.0
            ),
        }
        clock = asic_clock(20.0 * tech.fo4_delay_ps)
        with runner.stage("cts"), obs.span("flow.asic.cts") as sp:
            maybe_trip(options.fault, "cts")
            if library.has_base("BUF"):
                buffered = buffer_high_fanout(module, library, max_fanout=10)
                notes["buffers_added"] = float(buffered.buffers_added)
                sp.set(buffers_added=buffered.buffers_added)
            sp.set(skew_fraction=clock.skew_fraction)
        if runner.keep_going:
            # Pre-flight lint after buffering (so fanout findings are
            # real, not about-to-be-fixed) but before sizing/STA.
            runner.diagnostics.extend(preflight(module, library))

        with runner.stage("size"), obs.span("flow.asic.size") as sp:
            maybe_trip(options.fault, "size")
            if options.sizing_moves > 0:
                sizing = guarded_size_for_speed(
                    module, library, clock, wire=wire,
                    max_moves=options.sizing_moves,
                )
                notes["sizing_moves"] = float(sizing.moves)
                notes["sizing_speedup"] = sizing.speedup
                sp.set(moves=sizing.moves, speedup=sizing.speedup,
                       area_growth=sizing.area_growth)

        timing = None
        with runner.stage("sta"), obs.span("flow.asic.sta") as sp:
            maybe_trip(options.fault, "sta")
            timing = guarded_solve_min_period(
                module, library, clock, wire=wire
            )
            sp.set(min_period_ps=timing.min_period_ps,
                   typical_mhz=timing.max_frequency_mhz)
        if timing is None:
            timing = fallback_timing(module, library, clock)
        typical_mhz = timing.max_frequency_mhz

        quoted = None
        with runner.stage("quote"), obs.span("flow.asic.quote") as sp:
            maybe_trip(options.fault, "quote")
            dist = sample_chip_speeds(typical_mhz, MATURE_PROCESS,
                                      count=4000, seed=options.seed)
            if options.speed_test:
                quoted = speed_tested_quote(dist)
                notes["quote_method"] = 1.0  # 1 = speed tested
            else:
                quoted = asic_worst_case_quote(dist)
                notes["quote_method"] = 0.0  # 0 = worst-case corner
            sp.set(quoted_mhz=quoted)
        if quoted is None:
            quoted = typical_mhz
            notes["quote_method"] = -1.0  # -1 = quote stage degraded

        flow_span.set(cells=module.instance_count(),
                      min_period_ps=timing.min_period_ps,
                      quoted_mhz=quoted)

    return FlowResult(
        name=f"asic_{options.workload}{options.bits}_s{stages}",
        style="asic",
        technology=tech,
        library_name=library.name,
        typical_frequency_mhz=typical_mhz,
        quoted_frequency_mhz=quoted,
        min_period_ps=timing.min_period_ps,
        fo4_depth=fo4_depth(timing, tech),
        logic_fo4=fo4_logic_depth(timing, tech),
        overhead_fraction=timing.overhead_fraction(),
        pipeline_stages=stages,
        gate_count=module.instance_count(),
        area_um2=total_area_um2(module, library),
        notes=notes,
        diagnostics=runner.diagnostics,
    )
