"""The Module class: a flat gate-level netlist container.

A module owns its ports, nets and instances, and maintains the driver and
sink indices that every downstream tool (STA, placement, sizing) queries.
The reproduction works with flat netlists -- the paper's analyses are all
about critical paths through mapped gates, which hierarchy only obscures.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

from repro.netlist.nets import (
    Instance,
    Net,
    NetlistError,
    Port,
    PortDirection,
    port_ref,
)


class Module:
    """A flat gate-level netlist.

    Typical construction::

        m = Module("adder")
        a = m.add_input("a")
        b = m.add_input("b")
        s = m.add_output("s")
        m.add_instance("u1", "XOR2_X1", inputs={"A": a, "B": b}, outputs={"Y": s})

    Nets are created implicitly the first time they are referenced; the
    module enforces the single-driver rule on every connection.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._ports: dict[str, Port] = {}
        self._nets: dict[str, Net] = {}
        self._instances: dict[str, Instance] = {}
        self._auto_net = itertools.count()
        self._auto_inst = itertools.count()

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare an input port; returns the name of its attached net."""
        self._add_port(Port(name, PortDirection.INPUT))
        net = self._ensure_net(name)
        self._set_driver(net, port_ref(name))
        return name

    def add_output(self, name: str) -> str:
        """Declare an output port; returns the name of its attached net."""
        self._add_port(Port(name, PortDirection.OUTPUT))
        net = self._ensure_net(name)
        net.sinks.append(port_ref(name))
        return name

    def _add_port(self, port: Port) -> None:
        if port.name in self._ports:
            raise NetlistError(f"duplicate port {port.name!r} in module {self.name}")
        self._ports[port.name] = port

    @property
    def ports(self) -> dict[str, Port]:
        return dict(self._ports)

    def inputs(self) -> list[str]:
        """Names of all input ports, in declaration order."""
        return [p.name for p in self._ports.values() if p.is_input]

    def outputs(self) -> list[str]:
        """Names of all output ports, in declaration order."""
        return [p.name for p in self._ports.values() if p.is_output]

    # ------------------------------------------------------------------
    # Nets
    # ------------------------------------------------------------------

    def add_net(self, name: str | None = None) -> str:
        """Create a net; auto-names it ``n<k>`` when no name is given."""
        if name is None:
            name = self._fresh_net_name()
        if name in self._nets:
            raise NetlistError(f"duplicate net {name!r} in module {self.name}")
        self._nets[name] = Net(name)
        return name

    def _fresh_net_name(self) -> str:
        while True:
            name = f"n{next(self._auto_net)}"
            if name not in self._nets:
                return name

    def _ensure_net(self, name: str) -> Net:
        if name not in self._nets:
            self._nets[name] = Net(name)
        return self._nets[name]

    @property
    def nets(self) -> dict[str, Net]:
        return dict(self._nets)

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"no net {name!r} in module {self.name}") from None

    def driver_of(self, net_name: str) -> object | None:
        """Driver endpoint of a net (see :class:`Net.driver`)."""
        return self.net(net_name).driver

    def sinks_of(self, net_name: str) -> list[object]:
        """Sink endpoints of a net."""
        return list(self.net(net_name).sinks)

    def _set_driver(self, net: Net, endpoint: object) -> None:
        if net.driver is not None:
            raise NetlistError(
                f"net {net.name!r} already driven by {net.driver!r}; "
                f"cannot add second driver {endpoint!r}"
            )
        net.driver = endpoint

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------

    def add_instance(
        self,
        name: str | None,
        cell_name: str,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        **attributes: object,
    ) -> Instance:
        """Instantiate a cell and wire it up.

        Referenced nets are created on demand.  Output connections claim
        net drivership; a second driver on any net raises.

        Args:
            name: instance name, or ``None`` to auto-generate one.
            cell_name: library cell name.
            inputs: pin -> net mapping for input pins.
            outputs: pin -> net mapping for output pins.
            **attributes: free-form annotations stored on the instance.
        """
        if name is None:
            name = self._fresh_instance_name(cell_name)
        if name in self._instances:
            raise NetlistError(f"duplicate instance {name!r} in module {self.name}")
        inst = Instance(
            name=name,
            cell_name=cell_name,
            inputs=dict(inputs or {}),
            outputs=dict(outputs or {}),
            attributes=dict(attributes),
        )
        for pin, net_name in inst.inputs.items():
            net = self._ensure_net(net_name)
            net.sinks.append((name, pin))
        for pin, net_name in inst.outputs.items():
            net = self._ensure_net(net_name)
            self._set_driver(net, (name, pin))
        self._instances[name] = inst
        return inst

    def _fresh_instance_name(self, cell_name: str) -> str:
        stem = cell_name.split("_")[0].lower()
        while True:
            name = f"{stem}_{next(self._auto_inst)}"
            if name not in self._instances:
                return name

    @property
    def instances(self) -> dict[str, Instance]:
        return dict(self._instances)

    def instance(self, name: str) -> Instance:
        """Look up an instance by name."""
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(
                f"no instance {name!r} in module {self.name}"
            ) from None

    def remove_instance(self, name: str) -> None:
        """Delete an instance, detaching all of its pin connections."""
        inst = self.instance(name)
        for pin, net_name in inst.inputs.items():
            self._nets[net_name].sinks.remove((name, pin))
        for pin, net_name in inst.outputs.items():
            net = self._nets[net_name]
            if net.driver == (name, pin):
                net.driver = None
        del self._instances[name]

    def replace_cell(self, instance_name: str, new_cell_name: str) -> None:
        """Swap the library cell of an instance in place.

        This is the primitive used by discrete sizing (Section 6): the
        netlist topology is untouched, only the drive strength changes.
        """
        self.instance(instance_name).cell_name = new_cell_name

    # ------------------------------------------------------------------
    # Queries and integrity
    # ------------------------------------------------------------------

    def cell_counts(self) -> dict[str, int]:
        """Histogram of instantiated cell names."""
        counts: dict[str, int] = {}
        for inst in self._instances.values():
            counts[inst.cell_name] = counts.get(inst.cell_name, 0) + 1
        return counts

    def instance_count(self) -> int:
        return len(self._instances)

    def net_count(self) -> int:
        return len(self._nets)

    def iter_instances(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def check(self) -> list[str]:
        """Structural integrity audit; returns a list of problems.

        Checks: every net has a driver, and the driver/sink indices agree
        with instance pin maps.  Sink-less (dangling) nets are legal and
        reported by :meth:`unused_nets` instead.
        """
        problems: list[str] = []
        for net in self._nets.values():
            if net.driver is None:
                problems.append(f"net {net.name!r} has no driver")
        for inst in self._instances.values():
            for pin, net_name in inst.outputs.items():
                net = self._nets.get(net_name)
                if net is None or net.driver != (inst.name, pin):
                    problems.append(
                        f"driver index inconsistent for {inst.name}.{pin}"
                    )
            for pin, net_name in inst.inputs.items():
                net = self._nets.get(net_name)
                if net is None or (inst.name, pin) not in net.sinks:
                    problems.append(f"sink index inconsistent for {inst.name}.{pin}")
        return problems

    def prune_dangling_nets(self) -> int:
        """Delete nets with neither driver nor sinks; returns the count.

        Restructuring passes (buffering, resynthesis) orphan nets when
        they remove instances; pruning restores well-formedness.
        """
        dead = [
            name
            for name, net in self._nets.items()
            if net.driver is None and not net.sinks
            and name not in self._ports
        ]
        for name in dead:
            del self._nets[name]
        return len(dead)

    def unused_nets(self) -> list[str]:
        """Nets with no sinks at all (dangling drivers)."""
        return [net.name for net in self._nets.values() if not net.sinks]

    def assert_well_formed(self) -> None:
        """Raise :class:`NetlistError` if :meth:`check` reports problems."""
        problems = self.check()
        if problems:
            raise NetlistError(
                f"module {self.name} is malformed: " + "; ".join(problems[:10])
            )

    def clone(self, name: str | None = None) -> "Module":
        """Deep-copy this module (instances, nets, ports, attributes)."""
        copy = Module(name or self.name)
        for port in self._ports.values():
            if port.is_input:
                copy.add_input(port.name)
            else:
                copy.add_output(port.name)
        for net_name in self._nets:
            if net_name not in copy._nets:
                copy.add_net(net_name)
        for inst in self._instances.values():
            copy.add_instance(
                inst.name,
                inst.cell_name,
                inputs=dict(inst.inputs),
                outputs=dict(inst.outputs),
                **dict(inst.attributes),
            )
        return copy

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, ports={len(self._ports)}, "
            f"nets={len(self._nets)}, instances={len(self._instances)})"
        )
