"""Simulated annealing over a pluggable move/cost interface.

Extracted from the continuous placer so every placement style shares
one annealer: the row-grid placer anneals pairwise position swaps, the
structured-ASIC placer anneals slot re-assignments, and both get the
same geometric cooling schedule and acceptance rule.

The loop is deliberately spartan because its exact RNG call sequence is
load-bearing: golden-result tests pin flow outputs bit-for-bit, so the
order of ``rng`` consumption (one ``propose`` per step, then *at most
one* ``rng.random()`` -- only for an uphill move) must never change.
Problems own their move proposal, cost delta and reversal; the annealer
owns temperature and acceptance.
"""

from __future__ import annotations

import math
import random
from typing import Any, Protocol

#: A move is whatever the problem's ``propose`` returns; the annealer
#: only threads it through ``apply``/``revert`` opaquely.
AnnealMove = Any


class AnnealProblem(Protocol):
    """The move/cost interface the annealer optimises over."""

    def propose(self, rng: random.Random) -> AnnealMove:
        """Draw a candidate move (must consume a deterministic amount
        of ``rng`` state for a given problem state)."""
        ...

    def apply(self, move: AnnealMove) -> float:
        """Apply the move to the problem state; return the cost delta
        (negative = improvement)."""
        ...

    def revert(self, move: AnnealMove) -> None:
        """Undo a just-applied move (called only for rejected moves)."""
        ...


def anneal(
    problem: AnnealProblem,
    rng: random.Random,
    steps: int,
    temperature: float,
    final_fraction: float = 0.02,
) -> int:
    """Anneal ``problem`` for ``steps`` moves; return the accepted count.

    Geometric cooling from ``temperature`` down to
    ``final_fraction * temperature``; uphill moves are accepted with the
    Metropolis probability ``exp(-delta / T)``.

    Args:
        problem: move/cost interface (see :class:`AnnealProblem`).
        rng: the *only* randomness source; callers own seeding policy.
        steps: number of proposed moves (0 = no-op).
        temperature: initial temperature, in cost units (a useful
            default is a few grid pitches of wirelength).
        final_fraction: end-of-schedule temperature as a fraction of
            the initial one.
    """
    if steps <= 0:
        return 0
    accepted = 0
    cooling = math.exp(math.log(final_fraction) / max(steps, 1))
    for _ in range(steps):
        move = problem.propose(rng)
        delta = problem.apply(move)
        if delta > 0 and rng.random() >= math.exp(
            -delta / max(temperature, 1e-9)
        ):
            problem.revert(move)
        else:
            accepted += 1
        temperature *= cooling
    return accepted
