"""E3 -- Section 4: FO4 depths of the reference designs.

The paper's calibration points: FO4 = 0.5*Leff ns (footnote 1), 13 FO4
per cycle for the 1 GHz PowerPC, 15 for the Alpha, ~44 for the Xtensa
(footnote 2), and 55 ps FO4 for IBM's 0.18 um CMOS7S (Section 8.3).
Measured here both from the rule and from mapped netlists through the
STA engine.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import alu
from repro.sta import asic_clock, fo4_depth, register_boundaries, solve_min_period
from repro.tech import CMOS180_CUSTOM, CMOS250_ASIC, CMOS250_CUSTOM


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(alu(16, library, fast_adder=False), library)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)
    timing = solve_min_period(module, library, clock)
    return fo4_depth(timing, CMOS250_ASIC)


def test_e3_fo4_calibration(benchmark):
    asic_alu_fo4 = run_once(benchmark, _measure)

    ppc_fo4 = CMOS250_CUSTOM.fo4_from_period(1000.0)  # 1 GHz
    alpha_fo4_at_its_leff = 1e6 / 750.0 / (500.0 * 0.178)
    xtensa_fo4 = CMOS250_ASIC.fo4_from_period(1e6 / 250.0)

    rows = [
        row("FO4 rule: Leff 0.15um -> FO4", "75 ps",
            CMOS250_CUSTOM.fo4_delay_ps, 74.9, 75.1, fmt="{:.0f} ps"),
        row("FO4 rule: Leff 0.18um -> FO4", "90 ps",
            CMOS250_ASIC.fo4_delay_ps, 89.9, 90.1, fmt="{:.0f} ps"),
        row("IBM PowerPC cycle at 1 GHz", "13 FO4", ppc_fo4,
            12.8, 13.8, fmt="{:.1f} FO4"),
        row("Alpha 21264A cycle at 750 MHz", "15 FO4",
            alpha_fo4_at_its_leff, 14.3, 15.7, fmt="{:.1f} FO4"),
        row("Xtensa cycle at 250 MHz", "~44 FO4", xtensa_fo4,
            42.0, 46.0, fmt="{:.1f} FO4"),
        row("IBM CMOS7S (Leff 0.12um) FO4 vs rule", "55 ps",
            CMOS180_CUSTOM.fo4_delay_ps, 54.0, 66.0, fmt="{:.0f} ps"),
        row("measured: naive 16b ALU through our STA", "40-80 FO4 class",
            asic_alu_fo4, 40.0, 90.0, fmt="{:.1f} FO4"),
    ]
    report("E3  FO4 depth calibration (Section 4 + 8.3)", rows)
    for entry in rows:
        assert entry.ok, entry
