"""Terminal rendering of traces and run records: span trees, waterfalls.

Replaces the old flat per-name profile table with structure-preserving
views:

* :func:`aggregate_spans` collapses a finished-span list into *path*
  aggregates -- one entry per distinct call path (root span name down
  to the leaf), carrying call count, total/self time, and cache-hit /
  error annotations.  Adopted pool-worker spans aggregate like local
  ones because adoption already re-parented them;
* :func:`render_span_tree` prints that aggregate as an indented tree
  with total and self milliseconds per node (the ``--profile`` and
  ``repro-gap stats`` view);
* :func:`render_waterfall` prints a per-stage waterfall table -- start
  offset, duration bar, status and cache annotation -- from the stage
  records of a flow run;
* :func:`render_run` renders one full ledger record: header, claims,
  stage waterfall, span tree, metrics.

All output is deterministic for a deterministic clock; entries are
ordered by call path.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.obs.trace import Span

#: Separator inside stored span paths (span names are dotted already).
PATH_SEP = " > "

#: Cap on stored span-tree entries per run record (defensive bound).
MAX_SPAN_ENTRIES = 500


def aggregate_spans(spans: Sequence[Span],
                    root_index: int | None = None) -> list[dict]:
    """Collapse finished spans into per-call-path aggregate entries.

    Args:
        spans: finished spans (any order; parent links by span index).
        root_index: when given, only the span with that index and its
            descendants are aggregated (the engine uses this to scope a
            record to one flow's subtree).

    Returns:
        JSON-ready entries sorted by path, each with ``path``, ``name``,
        ``depth``, ``calls``, ``total_ms``, ``self_ms``, ``hits`` (calls
        that were cache replays) and ``errors``.
    """
    by_index = {span.index: span for span in spans}
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(span: Span) -> tuple[str, ...] | None:
        cached = paths.get(span.index)
        if cached is not None:
            return cached
        if root_index is not None and span.index == root_index:
            path: tuple[str, ...] | None = (span.name,)
        elif span.parent is None or span.parent not in by_index:
            path = None if root_index is not None else (span.name,)
        else:
            parent_path = path_of(by_index[span.parent])
            path = (None if parent_path is None
                    else parent_path + (span.name,))
        if path is not None:
            paths[span.index] = path
        return path

    acc: dict[tuple[str, ...], dict] = {}
    for span in spans:
        if span.end_s is None:
            continue
        path = path_of(span)
        if path is None:
            continue
        entry = acc.get(path)
        if entry is None:
            entry = acc[path] = {
                "path": PATH_SEP.join(path),
                "name": span.name,
                "depth": len(path) - 1,
                "calls": 0,
                "total_ms": 0.0,
                "self_ms": 0.0,
                "hits": 0,
                "errors": 0,
            }
        entry["calls"] += 1
        entry["total_ms"] += span.duration_s * 1e3
        entry["self_ms"] += span.self_s * 1e3
        if span.attributes.get("cached"):
            entry["hits"] += 1
        if "error" in span.attributes:
            entry["errors"] += 1
    entries = [acc[path] for path in sorted(acc)]
    for entry in entries:
        entry["total_ms"] = round(entry["total_ms"], 6)
        entry["self_ms"] = round(entry["self_ms"], 6)
    if len(entries) > MAX_SPAN_ENTRIES:
        entries.sort(key=lambda e: e["total_ms"], reverse=True)
        entries = entries[:MAX_SPAN_ENTRIES]
        entries.sort(key=lambda e: e["path"])
    return entries


def _annotations(entry: dict) -> str:
    notes = []
    hits, calls = entry.get("hits", 0), entry.get("calls", 0)
    if hits:
        notes.append("cached" if hits == calls
                     else f"{hits}/{calls} cached")
    if entry.get("errors"):
        notes.append(f"{entry['errors']} error(s)")
    return f"  [{', '.join(notes)}]" if notes else ""


def render_span_entries(entries: Sequence[dict]) -> str:
    """Indented span-tree table from aggregate entries."""
    if not entries:
        return "(no spans recorded)"
    lines = [
        f"{'span tree':<44s} {'calls':>6s} {'total ms':>10s} "
        f"{'self ms':>10s}"
    ]
    for entry in entries:
        label = "  " * entry.get("depth", 0) + entry.get("name", "?")
        lines.append(
            f"{label:<44.44s} {entry.get('calls', 0):>6d} "
            f"{entry.get('total_ms', 0.0):>10.2f} "
            f"{entry.get('self_ms', 0.0):>10.2f}"
            f"{_annotations(entry)}"
        )
    return "\n".join(lines)


def render_span_tree(spans: Sequence[Span],
                     root_index: int | None = None) -> str:
    """Indented span tree straight from a tracer's finished spans."""
    return render_span_entries(aggregate_spans(spans,
                                               root_index=root_index))


def top_spans(entries: Sequence[dict], n: int) -> list[dict]:
    """The ``n`` hottest entries by self time, descending."""
    ranked = sorted(entries, key=lambda e: e.get("self_ms", 0.0),
                    reverse=True)
    return list(ranked[:max(n, 0)])


def render_top_spans(entries: Sequence[dict], n: int) -> str:
    """``repro-gap stats --top N``: hottest spans by self time.

    The ``self %`` column is each entry's share of the whole run's
    exclusive time (all entries, not just the displayed slice), so the
    displayed rows report how much of the run they explain.
    """
    hottest = top_spans(entries, n)
    if not hottest:
        return "(no spans recorded)"
    grand_self = sum(float(e.get("self_ms", 0.0)) for e in entries)
    lines = [
        f"{'span (by self time)':<44s} {'calls':>6s} "
        f"{'self ms':>10s} {'self %':>7s} {'total ms':>10s}"
    ]
    for entry in hottest:
        self_ms = float(entry.get("self_ms", 0.0))
        pct = (f"{100.0 * self_ms / grand_self:>6.1f}%"
               if grand_self > 0 else f"{'--':>7s}")
        lines.append(
            f"{entry.get('name', '?'):<44.44s} "
            f"{entry.get('calls', 0):>6d} "
            f"{self_ms:>10.2f} {pct} "
            f"{entry.get('total_ms', 0.0):>10.2f}"
        )
    return "\n".join(lines)


def render_waterfall(stages: Sequence[dict], width: int = 32) -> str:
    """Per-stage waterfall: start offset, duration bar, cache status.

    Args:
        stages: stage-record dicts (``name``, ``status``, ``wall_s``,
            ``cache_hit``, optionally the profiler's ``cpu_s`` /
            ``peak_mem_kb``) in run order.  Profile columns render
            only when at least one stage carries them, so unprofiled
            runs keep the original layout.
        width: bar column width in characters.
    """
    if not stages:
        return "(no stage records)"
    walls = [max(float(s.get("wall_s", 0.0)), 0.0) for s in stages]
    total = sum(walls)
    profiled = any(s.get("cpu_s") is not None
                   or s.get("peak_mem_kb") is not None for s in stages)
    lines = [f"stage waterfall (total {total:.4f} s):"]
    scale = width / total if total > 0 else 0.0
    offset = 0.0
    for stage, wall in zip(stages, walls):
        lead = int(offset * scale)
        bar_len = max(int(round(wall * scale)), 1 if wall > 0 else 0)
        bar_len = min(bar_len, width - lead) if lead < width else 0
        bar = " " * lead + "#" * bar_len
        mark = " hit" if stage.get("cache_hit") else ""
        profile = ""
        if profiled:
            cpu = stage.get("cpu_s")
            peak = stage.get("peak_mem_kb")
            cpu_text = f"{cpu:>8.4f}" if cpu is not None else f"{'--':>8s}"
            peak_text = (f"{peak:>9.1f}" if peak is not None
                         else f"{'--':>9s}")
            profile = f"  cpu {cpu_text} s  peak {peak_text} KiB"
        lines.append(
            f"  {str(stage.get('name', '?')):<10.10s} "
            f"{str(stage.get('status', '?')):<8.8s} "
            f"{wall:>9.4f} s  |{bar:<{width}s}|{profile}{mark}"
        )
        offset += wall
    return "\n".join(lines)


def render_metrics(flat: dict) -> str:
    """Flat metric table (sorted keys, fixed columns)."""
    if not flat:
        return "(no metrics recorded)"
    lines = [f"{'metric':<52s} {'value':>12s}"]
    for key in sorted(flat):
        value = flat[key]
        if isinstance(value, float):
            # Empty histograms export NaN percentiles; print a clean
            # placeholder instead of a bare "nan".
            rendered = "--" if math.isnan(value) else f"{value:.3f}"
        else:
            rendered = str(value)
        lines.append(f"{key:<52.52s} {rendered:>12s}")
    return "\n".join(lines)


def render_claims(claims: dict) -> str:
    """Claim table: value against its tolerance band."""
    if not claims:
        return "(no claims recorded)"
    lines = [f"{'claim':<44s} {'value':>10s} {'band':>17s} {'':>4s}"]
    for name in sorted(claims):
        entry = claims[name]
        if not isinstance(entry, dict):
            continue
        value = entry.get("value")
        band = f"[{entry.get('lo')}, {entry.get('hi')}]"
        mark = "in" if entry.get("ok", True) else "OUT"
        rendered = (f"{value:.4g}" if isinstance(value, (int, float))
                    else str(value))
        lines.append(
            f"{name:<44.44s} {rendered:>10s} {band:>17.17s} {mark:>4s}"
        )
    return "\n".join(lines)


def render_run(record: "object") -> str:
    """Full terminal view of one ledger run record.

    Accepts a :class:`~repro.obs.ledger.RunRecord` or its dict form.
    """
    rec = record.to_dict() if hasattr(record, "to_dict") else dict(record)
    created = rec.get("created_s", 0.0)
    try:
        import datetime

        stamp = datetime.datetime.fromtimestamp(
            created, tz=datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ")
    except (OverflowError, OSError, ValueError):
        stamp = "?"
    lines = [
        f"run {rec.get('run_id', '?')}  kind={rec.get('kind', '?')}  "
        f"label={rec.get('label', '?')}",
        f"  created {stamp}  wall {rec.get('wall_s', 0.0):.4f} s  "
        f"fingerprint {rec.get('fingerprint', '?')}  "
        f"rev {rec.get('git_rev') or '-'}"
        f"{'  [worker]' if rec.get('worker') else ''}",
    ]
    diagnostics = rec.get("diagnostics") or []
    if diagnostics:
        lines.append(f"  diagnostics: {len(diagnostics)}")
    if rec.get("events_path"):
        lines.append(f"  events: {rec['events_path']}  "
                     f"(repro-gap top {rec['events_path']})")
    sections = []
    if rec.get("claims"):
        sections.append(render_claims(rec["claims"]))
    if rec.get("stages"):
        sections.append(render_waterfall(rec["stages"]))
    if rec.get("spans"):
        # Lazy import: profile builds on this module's aggregates.
        from repro.obs import profile as _profile

        sections.append(_profile.render_critical_path(rec["spans"]))
        sections.append(render_span_entries(rec["spans"]))
    if rec.get("metrics"):
        sections.append(render_metrics(rec["metrics"]))
    body = "\n\n".join(sections) if sections else "(empty record)"
    return "\n".join(lines) + "\n\n" + body


def diff_runs(a: "object", b: "object") -> str:
    """Side-by-side delta view of two run records (stages, metrics,
    claims)."""
    rec_a = a.to_dict() if hasattr(a, "to_dict") else dict(a)
    rec_b = b.to_dict() if hasattr(b, "to_dict") else dict(b)
    lines = [
        f"diff {rec_a.get('run_id', 'A')} ({rec_a.get('label', '?')}) "
        f"-> {rec_b.get('run_id', 'B')} ({rec_b.get('label', '?')})",
        f"  wall {rec_a.get('wall_s', 0.0):.4f} s -> "
        f"{rec_b.get('wall_s', 0.0):.4f} s",
    ]
    if rec_a.get("fingerprint") != rec_b.get("fingerprint"):
        lines.append("  WARNING: fingerprints differ -- these are not "
                     "the same design point")

    stages_a = {s.get("name"): s for s in rec_a.get("stages") or []}
    stages_b = {s.get("name"): s for s in rec_b.get("stages") or []}
    names = [s.get("name") for s in rec_a.get("stages") or []]
    names += [n for n in (s.get("name") for s in rec_b.get("stages") or [])
              if n not in names]
    if names:
        lines.append("")
        lines.append(f"  {'stage':<10s} {'A wall s':>10s} {'B wall s':>10s}"
                     f" {'delta':>8s}  status")
        for name in names:
            sa, sb = stages_a.get(name), stages_b.get(name)
            wa = float(sa.get("wall_s", 0.0)) if sa else float("nan")
            wb = float(sb.get("wall_s", 0.0)) if sb else float("nan")
            if sa and sb and wa > 0:
                delta = f"{(wb / wa - 1.0) * 100.0:+.0f}%"
            else:
                delta = "n/a"
            status = (f"{sa.get('status') if sa else '-'}"
                      f" -> {sb.get('status') if sb else '-'}")
            lines.append(
                f"  {str(name):<10.10s} {wa:>10.4f} {wb:>10.4f} "
                f"{delta:>8s}  {status}"
            )

    metrics_a = rec_a.get("metrics") or {}
    metrics_b = rec_b.get("metrics") or {}
    changed = []
    for key in sorted(set(metrics_a) | set(metrics_b)):
        va, vb = metrics_a.get(key), metrics_b.get(key)
        if va != vb:
            changed.append((key, va, vb))
    if changed:
        lines.append("")
        lines.append(f"  {'metric':<44s} {'A':>12s} {'B':>12s}")
        for key, va, vb in changed:
            fa = f"{va:.4g}" if isinstance(va, (int, float)) else str(va)
            fb = f"{vb:.4g}" if isinstance(vb, (int, float)) else str(vb)
            lines.append(f"  {key:<44.44s} {fa:>12s} {fb:>12s}")

    claims_a = rec_a.get("claims") or {}
    claims_b = rec_b.get("claims") or {}
    drifted = []
    for key in sorted(set(claims_a) | set(claims_b)):
        ca = (claims_a.get(key) or {}).get("value")
        cb = (claims_b.get(key) or {}).get("value")
        if ca != cb:
            drifted.append((key, ca, cb))
    if drifted:
        lines.append("")
        lines.append(f"  {'claim':<44s} {'A':>12s} {'B':>12s}")
        for key, ca, cb in drifted:
            fa = f"{ca:.4g}" if isinstance(ca, (int, float)) else str(ca)
            fb = f"{cb:.4g}" if isinstance(cb, (int, float)) else str(cb)
            lines.append(f"  {key:<44.44s} {fa:>12s} {fb:>12s}")
    if len(lines) == 2:
        lines.append("  (records are identical in stages, metrics and "
                     "claims)")
    return "\n".join(lines)
