"""Shared reporting helpers for the paper-reproduction benchmarks.

Every benchmark prints a table of (claim, paper value, measured value)
rows through :func:`report`, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's quantitative statements side by side with this
reproduction's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Row:
    """One claim-vs-measurement row.

    Attributes:
        claim: short description of the paper's statement.
        paper: the paper's number, as text (may be a range).
        measured: this reproduction's number, as text.
        ok: whether the measured value lands in (or adjacent to) the
            paper's band.
    """

    claim: str
    paper: str
    measured: str
    ok: bool


def row(claim: str, paper: str, value: float, lo: float, hi: float,
        fmt: str = "{:.2f}x") -> Row:
    """Build a row whose measured value must land within [lo, hi]."""
    return Row(
        claim=claim,
        paper=paper,
        measured=fmt.format(value),
        ok=lo <= value <= hi,
    )


def report(title: str, rows: list[Row]) -> None:
    """Print a claim-vs-measured table."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(f"{'claim':<44s} {'paper':>12s} {'measured':>10s} {'band':>6s}")
    for entry in rows:
        mark = "in" if entry.ok else "OUT"
        print(
            f"{entry.claim:<44.44s} {entry.paper:>12s} "
            f"{entry.measured:>10s} {mark:>6s}"
        )


def run_once(benchmark, func):
    """Run a workload exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, not microbenchmarks;
    one round records the wall time without re-running multi-second
    flows dozens of times.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
