"""Counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` holds named metrics; each metric keeps one
series per distinct label set (bounded -- runaway label cardinality is a
bug, so it raises instead of silently growing).  Histograms store raw
observations, which is exact and cheap at this system's volumes
(thousands of observations per run, not millions per second).
"""

from __future__ import annotations

import math
import threading
import warnings
from typing import Callable

from repro.obs.trace import ObsError

#: A normalised label set: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default bound on distinct label sets per metric.
DEFAULT_MAX_SERIES = 64


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Live-telemetry hook: ``fn(kind, name, labels, value)`` called on
#: every counter increment, gauge set, and histogram observation;
#: installed by :func:`repro.obs.live.enable`.  One None check when no
#: listener is installed.
_metric_listener: Callable[[str, str, dict, float], None] | None = None


def set_metric_listener(
    listener: Callable[[str, str, dict, float], None] | None,
) -> None:
    """Install (or with None, remove) the metric-delta listener."""
    global _metric_listener
    _metric_listener = listener


class _Metric:
    """Shared bookkeeping: name, help text, per-label-set series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.name = name
        self.help = help
        self.max_series = max_series
        self._series: dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def _series_for(self, labels: dict[str, str], factory) -> object:
        """Get or create the series for a label set, under the lock."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    raise ObsError(
                        f"metric {self.name!r} exceeded {self.max_series} "
                        f"label sets; label cardinality is unbounded"
                    )
                series = self._series[key] = factory()
            return series

    def series(self) -> dict[LabelKey, object]:
        """Snapshot of every label set's series."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            current = self._series.get(key)
            if current is None:
                if len(self._series) >= self.max_series:
                    raise ObsError(
                        f"metric {self.name!r} exceeded {self.max_series} "
                        f"label sets; label cardinality is unbounded"
                    )
                current = 0.0
            self._series[key] = float(current) + value
        if _metric_listener is not None:
            _metric_listener("counter", self.name, labels, value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            if key not in self._series and (
                len(self._series) >= self.max_series
            ):
                raise ObsError(
                    f"metric {self.name!r} exceeded {self.max_series} "
                    f"label sets; label cardinality is unbounded"
                )
            self._series[key] = float(value)
        if _metric_listener is not None:
            _metric_listener("gauge", self.name, labels, value)

    def value(self, **labels: str) -> float:
        with self._lock:
            key = _label_key(labels)
            if key not in self._series:
                raise ObsError(
                    f"gauge {self.name!r} has no value for {labels}"
                )
            return float(self._series[key])


class Histogram(_Metric):
    """Exact distribution of observed values."""

    kind = "histogram"

    def observe(self, value: float, **labels: str) -> None:
        series = self._series_for(labels, list)
        series.append(float(value))
        if _metric_listener is not None:
            _metric_listener("histogram", self.name, labels, value)

    def values(self, **labels: str) -> list[float]:
        with self._lock:
            return list(self._series.get(_label_key(labels)) or [])

    def count(self, **labels: str) -> int:
        return len(self.values(**labels))

    def total(self, **labels: str) -> float:
        return sum(self.values(**labels))

    def mean(self, **labels: str) -> float:
        values = self.values(**labels)
        return sum(values) / len(values) if values else 0.0

    def percentile(self, pct: float, **labels: str) -> float:
        """Linearly interpolated percentile of the raw observations.

        An empty series has no percentiles: the result is NaN with a
        :class:`RuntimeWarning` (not an exception -- a dashboard asking
        for p95 of a series that has not observed yet is a display
        problem, not a programming error).  A single-sample series
        returns that sample for every percentile.
        """
        if not 0.0 <= pct <= 100.0:
            raise ObsError("percentile must be within [0, 100]")
        values = sorted(self.values(**labels))
        if not values:
            warnings.warn(
                f"histogram {self.name!r} has no observations for "
                f"{labels}; percentile({pct:g}) is NaN",
                RuntimeWarning,
                stacklevel=2,
            )
            return math.nan
        if len(values) == 1:
            return values[0]
        rank = pct / 100.0 * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac


class MetricsRegistry:
    """Get-or-create home of every metric.

    Re-requesting a name returns the existing metric; requesting it as a
    different kind raises, because that is always a naming bug.
    """

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.max_series = max_series
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type, help: str) -> _Metric:
        if not name:
            raise ObsError("metric name must be non-empty")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name=name, help=help, max_series=self.max_series)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(name, Histogram, help)

    def all_metrics(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
