"""Logic-family substrate: static vs domino, monotone mapping, noise."""

from repro.circuit.domino import (
    domino_map,
    dual_rail_stimulus,
    is_monotone,
    to_negation_normal_form,
)
from repro.circuit.families import (
    DOMINO_PROFILE,
    FamilyError,
    FamilyProfile,
    PROFILES,
    STATIC_PROFILE,
    profile_of,
    sequential_speedup_from_combinational,
)
from repro.circuit.skewtolerant import (
    SkewTolerantClocking,
    conventional_cycle_fo4,
    skew_tolerance_speedup,
)
from repro.circuit.noise import (
    DOMINO_MARGIN_FRACTION,
    NoiseEnvironment,
    NoiseError,
    NoiseViolation,
    STATIC_MARGIN_FRACTION,
    audit_noise,
    max_safe_coupling,
    noise_margin_v,
)

__all__ = [
    "SkewTolerantClocking",
    "conventional_cycle_fo4",
    "skew_tolerance_speedup",
    "DOMINO_MARGIN_FRACTION",
    "DOMINO_PROFILE",
    "FamilyError",
    "FamilyProfile",
    "NoiseEnvironment",
    "NoiseError",
    "NoiseViolation",
    "PROFILES",
    "STATIC_MARGIN_FRACTION",
    "STATIC_PROFILE",
    "audit_noise",
    "domino_map",
    "dual_rail_stimulus",
    "is_monotone",
    "max_safe_coupling",
    "noise_margin_v",
    "profile_of",
    "sequential_speedup_from_combinational",
    "to_negation_normal_form",
]
