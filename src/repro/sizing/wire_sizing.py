"""Wire widening: trading routing area for RC delay.

Section 6: "wires may be widened to reduce the delays (proportional to
the product of resistance and capacitance) by reducing the resistance";
the paper cites simultaneous gate-and-wire sizing (Chen/Chu/Wong, [6]) as
a future tool.  We provide the per-net decision: for every long net of a
placement, sweep a width menu and keep the fastest realisation, charging
the area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.placement import Placement
from repro.physical.wires import wire_delay_ps
from repro.sizing.logical_effort import SizingError
from repro.sta.timing_graph import WireParasitics
from repro.tech.process import ProcessTechnology

#: Candidate width multiples offered to each net.
DEFAULT_WIDTH_MENU = (1.0, 2.0, 4.0)


@dataclass(frozen=True)
class WireSizingResult:
    """Outcome of wire-width optimisation.

    Attributes:
        parasitics: per-net parasitics at the chosen widths.
        widths: chosen width multiple per net (1.0 = minimum width).
        area_increase_um2: extra metal area consumed.
        total_delay_saved_ps: sum of per-net delay improvements.
    """

    parasitics: WireParasitics
    widths: dict[str, float]
    area_increase_um2: float
    total_delay_saved_ps: float


def size_wires(
    placement: Placement,
    tech: ProcessTechnology,
    width_menu: tuple[float, ...] = DEFAULT_WIDTH_MENU,
    min_length_um: float = 200.0,
) -> WireSizingResult:
    """Pick a width for every net of a placement.

    Nets shorter than ``min_length_um`` stay at minimum width (widening
    only adds capacitance there); longer nets take whichever menu entry
    minimises the repeated-wire delay.
    """
    if not width_menu or any(w < 1.0 for w in width_menu):
        raise SizingError("width menu must contain multiples >= 1.0")
    widths: dict[str, float] = {}
    extra_cap: dict[str, float] = {}
    extra_delay: dict[str, float] = {}
    area_increase = 0.0
    saved = 0.0
    base_width = tech.interconnect.min_width_um
    for net in placement.module.nets:
        length = placement.net_length_um(net)
        if length <= 0.0:
            continue
        base_delay = wire_delay_ps(tech, length, width_um=None)
        if length < min_length_um:
            widths[net] = 1.0
            extra_cap[net] = tech.interconnect.wire_capacitance(length)
            extra_delay[net] = base_delay * 0.0  # short: cap-only model
            continue
        best_mult = 1.0
        best_delay = base_delay
        for mult in width_menu:
            delay = wire_delay_ps(tech, length, width_um=mult * base_width)
            if delay < best_delay - 1e-9:
                best_delay = delay
                best_mult = mult
        widths[net] = best_mult
        chosen_width = best_mult * base_width
        extra_cap[net] = tech.interconnect.wire_capacitance(
            length, width_um=chosen_width
        )
        extra_delay[net] = best_delay
        area_increase += (best_mult - 1.0) * base_width * length
        saved += base_delay - best_delay
    return WireSizingResult(
        parasitics=WireParasitics(extra_cap, extra_delay),
        widths=widths,
        area_increase_um2=area_increase,
        total_delay_saved_ps=saved,
    )
