"""The Section 2 chip survey: reference designs and the headline gap.

"Among the fastest 0.25um commercially produced processors is the Alpha
21264A, which runs at 750MHz ... IBM has designed a 1.0GHz integer
processor in 0.25um technology ... Tensilica has a high performance
250MHz 0.25um ASIC processor ... we postulate that average 0.25um ASICs
run at between 120MHz and 150MHz, and high speed network ASICs may run
at up to 200MHz ... custom ICs operate 6x to 8x faster than ASICs in the
same process."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tech.process import (
    CMOS250_ASIC,
    CMOS250_CUSTOM,
    ProcessTechnology,
)
from repro.tech.scaling import generations_equivalent, years_equivalent


class DesignStyle(enum.Enum):
    """Methodology class of a surveyed chip."""

    CUSTOM = "custom"
    ASIC = "asic"


@dataclass(frozen=True)
class SurveyEntry:
    """One chip in the Section 2 survey.

    Attributes:
        name: chip name.
        style: custom or ASIC methodology.
        technology: the process model it maps to in this reproduction.
        frequency_mhz: shipping clock frequency.
        fo4_depth: FO4 delays per cycle (Section 4 numbers where given).
        pipeline_stages: pipeline depth (0 = not reported / unpipelined).
        area_mm2: die area.
        supply_v: supply voltage.
        power_w: power dissipation.
        notes: datasheet provenance notes.
    """

    name: str
    style: DesignStyle
    technology: ProcessTechnology
    frequency_mhz: float
    fo4_depth: float
    pipeline_stages: int = 0
    area_mm2: float = 0.0
    supply_v: float = 0.0
    power_w: float = 0.0
    notes: str = ""

    @property
    def period_ps(self) -> float:
        return 1.0e6 / self.frequency_mhz

    def implied_fo4_depth(self) -> float:
        """FO4 depth implied by frequency and the technology's FO4 rule."""
        return self.technology.fo4_from_period(self.period_ps)


ALPHA_21264A_ENTRY = SurveyEntry(
    name="Alpha 21264A",
    style=DesignStyle.CUSTOM,
    technology=CMOS250_CUSTOM,
    frequency_mhz=750.0,
    fo4_depth=15.0,
    pipeline_stages=7,
    area_mm2=225.0,
    supply_v=2.1,
    power_w=90.0,
    notes="dynamic logic, heavy pipelining, out-of-order 6-issue",
)

IBM_POWERPC_ENTRY = SurveyEntry(
    name="IBM 1.0GHz PowerPC",
    style=DesignStyle.CUSTOM,
    technology=CMOS250_CUSTOM,
    frequency_mhz=1000.0,
    fo4_depth=13.0,
    pipeline_stages=4,
    area_mm2=9.8,
    supply_v=1.8,
    power_w=6.3,
    notes="single-issue integer core, dynamic logic, Leff 0.15um",
)

XTENSA_ENTRY = SurveyEntry(
    name="Tensilica Xtensa",
    style=DesignStyle.ASIC,
    technology=CMOS250_ASIC,
    frequency_mhz=250.0,
    fo4_depth=44.0,
    pipeline_stages=5,
    area_mm2=4.0,
    notes="configurable ASIC processor; best-in-class ASIC methodology",
)

TYPICAL_ASIC_ENTRY = SurveyEntry(
    name="typical ASIC",
    style=DesignStyle.ASIC,
    technology=CMOS250_ASIC,
    frequency_mhz=135.0,
    fo4_depth=82.0,
    notes="anecdotal 120-150 MHz band, midpoint",
)

NETWORK_ASIC_ENTRY = SurveyEntry(
    name="high-speed network ASIC",
    style=DesignStyle.ASIC,
    technology=CMOS250_ASIC,
    frequency_mhz=200.0,
    fo4_depth=55.0,
    notes="upper bound of the ASIC band",
)

SURVEY: tuple[SurveyEntry, ...] = (
    ALPHA_21264A_ENTRY,
    IBM_POWERPC_ENTRY,
    XTENSA_ENTRY,
    TYPICAL_ASIC_ENTRY,
    NETWORK_ASIC_ENTRY,
)


def fastest(style: DesignStyle) -> SurveyEntry:
    """Fastest surveyed chip of a style."""
    return max(
        (e for e in SURVEY if e.style is style),
        key=lambda e: e.frequency_mhz,
    )


def headline_gap() -> tuple[float, float]:
    """The Section 2 gap band: (fastest custom / typical ASIC band).

    Returns (low, high): 1000/150 = 6.7 against the fast end of the
    typical band, 1000/120 = 8.3 against the slow end -- the "6x to 8x".
    """
    fastest_custom = fastest(DesignStyle.CUSTOM).frequency_mhz
    return fastest_custom / 150.0, fastest_custom / 120.0


def gap_summary() -> str:
    """Text table of the survey with the gap conversion of Section 2."""
    lines = [
        f"{'chip':<26s} {'style':<7s} {'MHz':>7s} {'FO4':>6s} {'stages':>7s}"
    ]
    for entry in SURVEY:
        stages = str(entry.pipeline_stages) if entry.pipeline_stages else "-"
        lines.append(
            f"{entry.name:<26s} {entry.style.value:<7s} "
            f"{entry.frequency_mhz:>7.0f} {entry.fo4_depth:>6.1f} {stages:>7s}"
        )
    low, high = headline_gap()
    lines.append(
        f"gap: {low:.1f}x to {high:.1f}x  "
        f"(~{generations_equivalent(high):.1f} process generations, "
        f"~{years_equivalent(high):.0f} years)"
    )
    return "\n".join(lines)
