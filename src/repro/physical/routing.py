"""Routing estimation: Steiner-lite lengths and congestion detours.

A full maze router is out of scope for the paper's analyses; what the
timing model needs is a defensible estimate of *routed* length per net.
We provide:

* rectilinear Steiner minimal-tree approximation (HPWL for 2-3 pins,
  Hanan-style chain for more -- within a few percent of RSMT on the net
  sizes placement produces);
* a congestion model that inflates lengths in over-utilised regions,
  letting experiments show how poor placement compounds into detours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physical.geometry import GeometryError, Point
from repro.physical.placement import Placement


def steiner_length_um(pins: list[Point]) -> float:
    """Approximate rectilinear Steiner tree length of a pin set.

    Exact (equal to HPWL) for 2 and 3 pins; for larger nets uses the
    sorted-x chain bound: HPWL plus the extra vertical span of interior
    pins, a standard fast RSMT surrogate.
    """
    if len(pins) < 2:
        return 0.0
    xs = sorted(p.x for p in pins)
    ys = sorted(p.y for p in pins)
    hpwl = (xs[-1] - xs[0]) + (ys[-1] - ys[0])
    if len(pins) <= 3:
        return hpwl
    by_x = sorted(pins, key=lambda p: p.x)
    extra = 0.0
    for i in range(1, len(by_x) - 1):
        nearest = min(
            abs(by_x[i].y - by_x[i - 1].y), abs(by_x[i].y - by_x[i + 1].y)
        )
        extra += 0.5 * nearest
    return hpwl + extra


@dataclass(frozen=True)
class CongestionModel:
    """Detour inflation as a function of regional utilisation.

    Attributes:
        base_detour: multiplier applied to every net (via blockages,
            non-preferred-direction jogs).
        congestion_exponent: how sharply detours grow once demand
            approaches capacity.
    """

    base_detour: float = 1.1
    congestion_exponent: float = 2.0

    def detour_factor(self, utilisation: float) -> float:
        """Length multiplier at a given routing utilisation (0..1+)."""
        if utilisation < 0:
            raise GeometryError("utilisation cannot be negative")
        congestion = max(0.0, utilisation - 0.6) / 0.4
        return self.base_detour * (1.0 + 0.5 * congestion**self.congestion_exponent)


def routed_lengths_um(
    placement: Placement,
    congestion: CongestionModel | None = None,
    utilisation: float = 0.7,
) -> dict[str, float]:
    """Estimated routed length for every net of a placement."""
    model = congestion or CongestionModel()
    factor = model.detour_factor(utilisation)
    lengths: dict[str, float] = {}
    for net in placement.module.nets:
        pins = placement._net_pins(net)
        lengths[net] = steiner_length_um(pins) * factor
    return lengths


def total_routed_length_um(
    placement: Placement,
    congestion: CongestionModel | None = None,
    utilisation: float = 0.7,
) -> float:
    """Total routed wirelength of a placement."""
    return sum(routed_lengths_um(placement, congestion, utilisation).values())
