"""Cycle-time accounting: the Section 3 critical-path decomposition.

"The speed of a circuit is determined by the delay of its longest
critical path, and the length of the critical path is a function of gate
delays, wiring delays, set-up and hold-times, clock-to-Q ... and clock
skew."

:class:`CycleTimeModel` expresses one design point as that sum, in FO4
units so designs in different technologies compare directly.  The survey
entries and the flows both reduce to this form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.process import ProcessTechnology


class CycleTimeError(ValueError):
    """Raised for unphysical cycle-time decompositions."""


@dataclass(frozen=True)
class CycleTimeModel:
    """Decomposition of one clock cycle into FO4-denominated components.

    Attributes:
        logic_fo4: combinational gate delay per cycle.
        wire_fo4: interconnect flight time per cycle.
        latch_fo4: sequential overhead (setup + clk->Q).
        skew_fraction: clock skew as a fraction of the *total* cycle.
    """

    logic_fo4: float
    wire_fo4: float = 0.0
    latch_fo4: float = 2.0
    skew_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.logic_fo4 <= 0:
            raise CycleTimeError("logic depth must be positive")
        if self.wire_fo4 < 0 or self.latch_fo4 < 0:
            raise CycleTimeError("wire and latch overheads must be >= 0")
        if not 0.0 <= self.skew_fraction < 1.0:
            raise CycleTimeError("skew fraction must be in [0, 1)")

    @property
    def work_fo4(self) -> float:
        """Skew-free cycle content: logic + wires + latch."""
        return self.logic_fo4 + self.wire_fo4 + self.latch_fo4

    @property
    def cycle_fo4(self) -> float:
        """Total cycle: work inflated by the skew budget.

        Skew is a fraction of the final cycle, so
        ``cycle = work / (1 - skew_fraction)``.
        """
        return self.work_fo4 / (1.0 - self.skew_fraction)

    @property
    def skew_fo4(self) -> float:
        return self.cycle_fo4 - self.work_fo4

    @property
    def overhead_fraction(self) -> float:
        """Non-logic share of the cycle (latch + skew + wires)."""
        return 1.0 - self.logic_fo4 / self.cycle_fo4

    def frequency_mhz(self, tech: ProcessTechnology) -> float:
        """Clock frequency of this cycle in a given technology."""
        return tech.frequency_mhz_from_fo4(self.cycle_fo4)

    def with_logic(self, logic_fo4: float) -> "CycleTimeModel":
        """Same overheads, different logic depth."""
        return CycleTimeModel(
            logic_fo4=logic_fo4,
            wire_fo4=self.wire_fo4,
            latch_fo4=self.latch_fo4,
            skew_fraction=self.skew_fraction,
        )

    def speedup_over(self, other: "CycleTimeModel") -> float:
        """Cycle-time ratio: how much faster this model clocks."""
        return other.cycle_fo4 / self.cycle_fo4


#: Alpha 21264-class custom cycle: 15 FO4 total with ~5% skew and a lean
#: hand-designed latch (Section 4.1: latches take 15% of the Alpha cycle).
ALPHA_CYCLE = CycleTimeModel(
    logic_fo4=11.0, wire_fo4=0.9, latch_fo4=2.3, skew_fraction=0.05
)

#: IBM 1 GHz PowerPC-class cycle: 13 FO4, 4 stages, 20% total overhead.
POWERPC_CYCLE = CycleTimeModel(
    logic_fo4=10.4, wire_fo4=0.0, latch_fo4=2.0, skew_fraction=0.05
)

#: Xtensa-class ASIC cycle: ~44 FO4 with 10% skew, guard-banded flops and
#: unbalanced stages (Section 4's ~30% ASIC overhead).
XTENSA_CYCLE = CycleTimeModel(
    logic_fo4=31.0, wire_fo4=4.6, latch_fo4=4.0, skew_fraction=0.10
)

#: Typical unpipelined ASIC control logic: very deep cycle.
TYPICAL_ASIC_CYCLE = CycleTimeModel(
    logic_fo4=60.0, wire_fo4=6.0, latch_fo4=4.0, skew_fraction=0.10
)
