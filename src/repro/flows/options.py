"""Flow option records: the shared base and the per-style extensions.

The implementation styles share most of their knobs (workload, width,
pipelining, sizing budget, seed, failure policy, chaos hook); the base
:class:`FlowOptions` holds that common core so the per-style option
classes cannot drift apart again, and so the engine can fingerprint and
resume any flow generically (see :func:`options_fingerprint`).  Each
subclass is the registry key of its backend: the sweep runner resolves
a point's flow from its options class (see
:func:`repro.flows.registry.backend_for_options`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

#: Option fields that select an execution *policy* rather than a design
#: point.  They are excluded from fingerprints: a run interrupted by an
#: injected fault must still be resumable with the fault disarmed, and a
#: keep_going re-run of a raise-mode flow shares its cached stages.
#: The array-engine switches are policy too: vectorized and object STA
#: are proven equivalent, so toggling them must not invalidate caches.
POLICY_FIELDS = ("on_error", "fault", "use_array", "check_array")


@dataclass(frozen=True)
class FlowOptions:
    """Knobs common to every implementation flow.

    Attributes:
        workload: one of :data:`repro.flows.asic.WORKLOADS`.
        bits: datapath width.
        pipeline_stages: 1 = registered boundaries only.
        sizing_moves: post-layout resizing budget (0 = skip).
        seed: placement / Monte Carlo RNG seed.
        on_error: ``"raise"`` aborts on the first stage failure;
            ``"keep_going"`` records the failure into the result's
            diagnostics and degrades gracefully.
        fault: chaos hook -- name of a stage at which to trip an
            injected fault (testing/selftest only; None = off).
        use_array: run STA stages on the vectorized array engine
            (``--no-array`` turns this off; the object engine is the
            oracle either way).
        check_array: cross-check every array analysis against the
            object engine (slow; CI smoke and debugging).
    """

    workload: str = "alu"
    bits: int = 8
    pipeline_stages: int = 1
    sizing_moves: int = 30
    seed: int = 1
    on_error: str = "raise"
    fault: str | None = None
    use_array: bool = True
    check_array: bool = False


@dataclass(frozen=True)
class AsicFlowOptions(FlowOptions):
    """Knobs of the ASIC flow (Sections 5, 6 and 8 levers).

    Attributes:
        rich_library: rich vs two-drive impoverished library (Section 6).
        careful_placement: good floorplanning/placement vs scatter
            (Section 5).
        speed_test: at-speed test instead of worst-case quote (Sec. 8.3).
    """

    rich_library: bool = True
    careful_placement: bool = True
    speed_test: bool = False


@dataclass(frozen=True)
class StructuredFlowOptions(FlowOptions):
    """Knobs of the structured-ASIC flow (prefab fabric, middle ground).

    Attributes:
        fabric_utilization: target maximum site utilization when picking
            the master; lower targets buy a bigger die (more prefab area
            wasted) but route with less congestion detour.
        careful_assignment: anneal the slot assignment after the greedy
            seed (the vendor's assignment tool vs a quick seed).
        speed_test: structured vendors bin-test the personalised parts,
            so at-speed quoting is the default (Section 8.3's lever,
            already pulled).
    """

    pipeline_stages: int = 2
    fabric_utilization: float = 0.6
    careful_assignment: bool = True
    speed_test: bool = True


@dataclass(frozen=True)
class CustomFlowOptions(FlowOptions):
    """Knobs of the custom flow (every lever of Sections 4-8 pulled).

    Attributes:
        target_cycle_fo4: pick the stage count that lands the cycle near
            this FO4 depth, the way real custom teams chose their pipe
            depth (Alpha 15 FO4, PowerPC 13 FO4).  None = fixed stages.
        use_latches: level-sensitive latches + multi-phase borrowing.
        use_domino: apply domino logic to the combinational critical path
            (Section 7; modelled via the measured family profile because
            full-netlist domino conversion is a custom manual step).
        flagship_silicon: sell the fast bins (Section 8) instead of the
            median.
    """

    workload: str = "alu_macro"
    pipeline_stages: int = 4
    sizing_moves: int = 60
    target_cycle_fo4: float | None = None
    use_latches: bool = True
    use_domino: bool = True
    flagship_silicon: bool = True


def digest(payload: object) -> str:
    """Stable short hash of a JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def options_fingerprint(options: FlowOptions) -> str:
    """Design-point identity of an option record.

    Policy fields (:data:`POLICY_FIELDS`) are excluded, so a checkpoint
    written under fault injection can be resumed with the fault disarmed
    and still be recognised as the same run.
    """
    payload = {
        field.name: getattr(options, field.name)
        for field in dataclasses.fields(options)
        if field.name not in POLICY_FIELDS
    }
    payload["__class__"] = type(options).__name__
    return digest(payload)
