"""Unit tests for repro.tech.process."""

import math

import pytest

from repro.tech import (
    CMOS180_ASIC,
    CMOS180_CUSTOM,
    CMOS250_ASIC,
    CMOS250_CUSTOM,
    InterconnectParameters,
    ProcessTechnology,
    TECHNOLOGIES,
    TechnologyError,
    get_technology,
)


class TestFO4Rule:
    def test_powerpc_fo4_is_75ps(self):
        # Paper footnote 1: Leff = 0.15 um gives FO4 = 75 ps.
        assert CMOS250_CUSTOM.fo4_delay_ps == pytest.approx(75.0)

    def test_typical_asic_fo4_is_90ps(self):
        # Paper footnote 2: Leff = 0.18 um in a typical 0.25 um ASIC.
        assert CMOS250_ASIC.fo4_delay_ps == pytest.approx(90.0)

    def test_powerpc_13_fo4_per_cycle(self):
        # 1.0 GHz -> 1000 ps period -> 13.3 FO4 (paper: "13 FO4 delays").
        fo4 = CMOS250_CUSTOM.fo4_from_period(1000.0)
        assert fo4 == pytest.approx(13.33, abs=0.05)

    def test_alpha_15_fo4_per_cycle(self):
        # Alpha 21264A at 750 MHz; Gronowski et al. report ~15 FO4.
        # 750 MHz -> 1333 ps.  With a custom-class Leff of 0.15 um the rule
        # gives 17.8 FO4; the paper's 15 FO4 corresponds to an even faster
        # effective FO4, so we only check the right ballpark.
        fo4 = CMOS250_CUSTOM.fo4_from_period(1e6 / 750.0)
        assert 14.0 < fo4 < 19.0

    def test_cmos7s_fo4_near_55ps(self):
        # Section 8.3: IBM CMOS7S with Leff = 0.12 um has FO4 = 55 ps; the
        # 0.5*Leff rule gives 60 ps, within 10%.
        assert CMOS180_CUSTOM.fo4_delay_ps == pytest.approx(60.0)
        assert abs(CMOS180_CUSTOM.fo4_delay_ps - 55.0) / 55.0 < 0.10

    def test_round_trip_period_fo4(self):
        for depth in (5.0, 13.0, 44.0):
            period = CMOS250_ASIC.period_from_fo4(depth)
            assert CMOS250_ASIC.fo4_from_period(period) == pytest.approx(depth)

    def test_frequency_from_fo4(self):
        # 44 FO4 at 90 ps/FO4 -> 3960 ps -> ~252 MHz (the Xtensa's 250 MHz).
        freq = CMOS250_ASIC.frequency_mhz_from_fo4(44.0)
        assert freq == pytest.approx(252.5, rel=0.01)

    def test_invalid_period_rejected(self):
        with pytest.raises(TechnologyError):
            CMOS250_ASIC.fo4_from_period(0.0)
        with pytest.raises(TechnologyError):
            CMOS250_ASIC.period_from_fo4(-1.0)


class TestProcessValidation:
    def _interconnect(self):
        return InterconnectParameters(
            resistance_ohm_per_um=0.1, capacitance_ff_per_um=0.2
        )

    def test_leff_cannot_exceed_drawn(self):
        with pytest.raises(TechnologyError):
            ProcessTechnology(
                name="bad",
                drawn_length_um=0.25,
                leff_um=0.30,
                vdd=2.5,
                interconnect=self._interconnect(),
            )

    def test_negative_lengths_rejected(self):
        with pytest.raises(TechnologyError):
            ProcessTechnology(
                name="bad",
                drawn_length_um=-0.25,
                leff_um=-0.3,
                vdd=2.5,
                interconnect=self._interconnect(),
            )

    def test_zero_vdd_rejected(self):
        with pytest.raises(TechnologyError):
            ProcessTechnology(
                name="bad",
                drawn_length_um=0.25,
                leff_um=0.18,
                vdd=0.0,
                interconnect=self._interconnect(),
            )

    def test_bad_interconnect_rejected(self):
        with pytest.raises(TechnologyError):
            InterconnectParameters(resistance_ohm_per_um=0.0, capacitance_ff_per_um=0.2)
        with pytest.raises(TechnologyError):
            InterconnectParameters(resistance_ohm_per_um=0.1, capacitance_ff_per_um=-1)

    def test_scaled_override(self):
        faster = CMOS250_ASIC.scaled(leff_um=0.15)
        assert faster.fo4_delay_ps == pytest.approx(75.0)
        assert faster.drawn_length_um == CMOS250_ASIC.drawn_length_um

    def test_frozen(self):
        with pytest.raises(Exception):
            CMOS250_ASIC.leff_um = 0.1  # type: ignore[misc]


class TestInterconnect:
    def test_resistance_scales_inversely_with_width(self):
        ic = CMOS250_ASIC.interconnect
        base = ic.wire_resistance(1000.0)
        wide = ic.wire_resistance(1000.0, width_um=2 * ic.min_width_um)
        assert wide == pytest.approx(base / 2.0)

    def test_capacitance_grows_sublinearly_with_width(self):
        ic = CMOS250_ASIC.interconnect
        base = ic.wire_capacitance(1000.0)
        wide = ic.wire_capacitance(1000.0, width_um=4 * ic.min_width_um)
        assert wide == pytest.approx(base * 2.0)  # sqrt(4) = 2
        assert wide < base * 4.0

    def test_sub_minimum_width_rejected(self):
        ic = CMOS250_ASIC.interconnect
        with pytest.raises(TechnologyError):
            ic.wire_resistance(100.0, width_um=ic.min_width_um / 2)
        with pytest.raises(TechnologyError):
            ic.wire_capacitance(100.0, width_um=ic.min_width_um / 2)

    def test_rc_product_positive_and_linear_in_length(self):
        ic = CMOS250_ASIC.interconnect
        rc1 = ic.wire_resistance(1000.0) * ic.wire_capacitance(1000.0)
        rc2 = ic.wire_resistance(2000.0) * ic.wire_capacitance(2000.0)
        assert rc2 == pytest.approx(4.0 * rc1)  # Elmore RC grows quadratically


class TestRegistry:
    def test_lookup_known(self):
        assert get_technology("cmos250_asic") is CMOS250_ASIC

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(KeyError, match="cmos250_asic"):
            get_technology("does_not_exist")

    def test_all_registered_names_match(self):
        for name, tech in TECHNOLOGIES.items():
            assert tech.name == name

    def test_asic_lags_custom_in_same_geometry(self):
        assert CMOS250_ASIC.fo4_delay_ps > CMOS250_CUSTOM.fo4_delay_ps
        assert CMOS180_ASIC.drawn_length_um == CMOS180_CUSTOM.drawn_length_um


class TestElectricalHelpers:
    def test_tau_is_fifth_of_fo4(self):
        assert CMOS250_ASIC.tau_ps == pytest.approx(CMOS250_ASIC.fo4_delay_ps / 5.0)

    def test_unit_input_cap_positive(self):
        assert CMOS250_ASIC.unit_input_cap_ff > 0

    def test_unit_inverter_width(self):
        t = CMOS250_ASIC
        assert t.unit_inverter_width_um == pytest.approx(
            t.unit_nmos_width_um * (1 + t.pn_ratio)
        )
