"""Unit tests for floorplanning, placement, routing and clock trees."""

import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.physical import (
    Block,
    CongestionModel,
    GeometryError,
    SlicingFloorplanner,
    asic_clock_tree,
    custom_clock_tree,
    place,
    steiner_length_um,
    total_routed_length_um,
)
from repro.physical.geometry import Point
from repro.sta import analyze, asic_clock
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)


def blocks(n=6):
    return [Block(f"b{i}", area_um2=1e6 * (1 + i % 3)) for i in range(n)]


class TestFloorplanner:
    def test_produces_legal_plan(self):
        result = SlicingFloorplanner(blocks(), seed=3).run(iterations=600)
        plan = result.floorplan
        assert plan.check_no_overlap() == []
        assert len(plan.rects) == 6
        assert 0.5 < plan.utilization() <= 1.0

    def test_annealing_beats_initial(self):
        fp = SlicingFloorplanner(blocks(8), seed=7)
        initial_cost, _ = fp._cost(fp.initial_expression())
        result = fp.run(iterations=1500)
        assert result.cost <= initial_cost + 1e-9

    def test_wirelength_pulls_connected_blocks_together(self):
        nets = [["b0", "b5"]] * 5  # heavily connected pair
        fp = SlicingFloorplanner(blocks(6), nets=nets,
                                 wirelength_weight=0.8, seed=11)
        result = fp.run(iterations=2500)
        plan = result.floorplan
        d_connected = plan.center_of("b0").manhattan_to(plan.center_of("b5"))
        others = [
            plan.center_of("b0").manhattan_to(plan.center_of(f"b{i}"))
            for i in (1, 2, 3, 4)
        ]
        assert d_connected <= sorted(others)[-1]  # not the farthest block

    def test_validation(self):
        with pytest.raises(GeometryError):
            SlicingFloorplanner([Block("solo", 100.0)])
        with pytest.raises(GeometryError):
            SlicingFloorplanner(blocks(3), nets=[["b0", "missing"]])
        with pytest.raises(GeometryError):
            Block("bad", -1.0)


class TestPlacement:
    @pytest.fixture(scope="class")
    def adder(self):
        return kogge_stone_adder(8, RICH)

    def test_careful_beats_sloppy_wirelength(self, adder):
        careful = place(adder, RICH, quality="careful", seed=5)
        sloppy = place(adder, RICH, quality="sloppy", seed=5)
        assert careful.total_wirelength_um() < sloppy.total_wirelength_um()

    def test_careful_beats_sloppy_timing(self, adder):
        clk = asic_clock(20000.0)
        careful = place(adder, RICH, quality="careful", seed=5)
        sloppy = place(adder, RICH, quality="sloppy", seed=5)
        r_careful = analyze(adder, RICH, clk, wire=careful.parasitics(RICH))
        r_sloppy = analyze(adder, RICH, clk, wire=sloppy.parasitics(RICH))
        assert r_careful.min_period_ps < r_sloppy.min_period_ps

    def test_placement_deterministic(self, adder):
        p1 = place(adder, RICH, seed=9)
        p2 = place(adder, RICH, seed=9)
        assert p1.total_wirelength_um() == pytest.approx(
            p2.total_wirelength_um()
        )

    def test_all_instances_placed(self, adder):
        p = place(adder, RICH, seed=1)
        assert set(p.positions) == set(adder.instances)

    def test_parasitics_nonnegative(self, adder):
        p = place(adder, RICH, seed=1)
        w = p.parasitics(RICH)
        assert all(v >= 0 for v in w.extra_cap_ff.values())
        assert all(v >= 0 for v in w.extra_delay_ps.values())

    def test_bad_quality_rejected(self, adder):
        with pytest.raises(GeometryError):
            place(adder, RICH, quality="heroic")


class TestRouting:
    def test_steiner_matches_hpwl_small_nets(self):
        pins = [Point(0, 0), Point(10, 5)]
        assert steiner_length_um(pins) == pytest.approx(15.0)
        pins3 = [Point(0, 0), Point(10, 0), Point(5, 5)]
        assert steiner_length_um(pins3) == pytest.approx(15.0)

    def test_steiner_at_least_hpwl_large_nets(self):
        pins = [Point(x, (x * 7) % 13) for x in range(8)]
        hpwl = (max(p.x for p in pins) - min(p.x for p in pins)) + (
            max(p.y for p in pins) - min(p.y for p in pins)
        )
        assert steiner_length_um(pins) >= hpwl

    def test_congestion_inflates(self):
        model = CongestionModel()
        assert model.detour_factor(0.9) > model.detour_factor(0.5)
        assert model.detour_factor(0.3) == pytest.approx(model.base_detour)

    def test_total_routed_length(self):
        adder = kogge_stone_adder(4, RICH)
        p = place(adder, RICH, seed=2)
        assert total_routed_length_um(p) > 0


class TestClockTree:
    def test_custom_tree_has_less_skew(self):
        asic = asic_clock_tree(CMOS250_ASIC, 10000.0, 256)
        custom = custom_clock_tree(CMOS250_ASIC, 10000.0, 256)
        assert custom.skew_ps < asic.skew_ps
        assert custom.total_delay_ps <= asic.total_delay_ps + 1e9  # sane

    def test_skew_ratio_matches_paper_classes(self):
        # ASIC ~10% vs custom ~5% of cycle: the ratio of the two trees'
        # skews should be roughly 2x.
        asic = asic_clock_tree(CMOS250_ASIC, 10000.0, 1024)
        custom = custom_clock_tree(CMOS250_ASIC, 10000.0, 1024)
        # Mismatch 0.26 vs 0.05 plus faster (wide-wire) custom segments;
        # the *fraction-of-own-cycle* comparison (10% vs 5%) is made in
        # bench E5, where each tree is judged against its design class's
        # cycle time.
        ratio = asic.skew_ps / custom.skew_ps
        assert 5.0 < ratio < 12.0

    def test_more_sinks_more_levels(self):
        small = asic_clock_tree(CMOS250_ASIC, 10000.0, 16)
        big = asic_clock_tree(CMOS250_ASIC, 10000.0, 4096)
        assert big.levels > small.levels
        assert big.sinks >= 4096

    def test_skew_fraction(self):
        tree = asic_clock_tree(CMOS250_ASIC, 10000.0, 64)
        assert tree.skew_fraction(4000.0) == pytest.approx(tree.skew_ps / 4000.0)
