"""Process-variation substrate: components, Monte Carlo, binning, fabs."""

from repro.variation.binning import (
    AccessGap,
    SpeedBin,
    access_gap,
    asic_worst_case_quote,
    bin_population,
    custom_flagship_frequency,
    speed_tested_quote,
)
from repro.variation.components import (
    MATURE_PROCESS,
    NEW_PROCESS,
    VariationComponents,
    VariationError,
    expected_bin_spread,
)
from repro.variation.fabs import (
    FabProfile,
    accessibility_penalty,
    best_accessible_fab,
    default_foundry_set,
    fab_distributions,
    fab_spread,
)
from repro.variation.overclocking import (
    BinningOutcome,
    ShippedPart,
    overclocking_headroom,
    ship_against_demand,
)
from repro.variation.montecarlo import (
    SpeedDistribution,
    maturity_trend,
    sample_chip_speeds,
    sample_chip_speeds_sta,
)

__all__ = [
    "BinningOutcome",
    "ShippedPart",
    "overclocking_headroom",
    "ship_against_demand",
    "AccessGap",
    "FabProfile",
    "MATURE_PROCESS",
    "NEW_PROCESS",
    "SpeedBin",
    "SpeedDistribution",
    "VariationComponents",
    "VariationError",
    "access_gap",
    "accessibility_penalty",
    "asic_worst_case_quote",
    "best_accessible_fab",
    "bin_population",
    "custom_flagship_frequency",
    "default_foundry_set",
    "expected_bin_spread",
    "fab_distributions",
    "fab_spread",
    "maturity_trend",
    "sample_chip_speeds",
    "sample_chip_speeds_sta",
    "speed_tested_quote",
]
