"""Unit tests for repro.synth.ast and repro.synth.parser."""

import pytest

from repro.synth import (
    And,
    Const,
    FALSE,
    Not,
    Or,
    SynthesisError,
    TRUE,
    Var,
    Xor,
    majority3,
    mux,
    parse_design,
    parse_expression,
)


class TestAst:
    def test_evaluate_basics(self):
        a, b = Var("a"), Var("b")
        env = {"a": True, "b": False}
        assert (a & b).evaluate(env) is False
        assert (a | b).evaluate(env) is True
        assert (a ^ b).evaluate(env) is True
        assert (~a).evaluate(env) is False
        assert TRUE.evaluate(env) is True
        assert FALSE.evaluate(env) is False

    def test_variables(self):
        expr = (Var("a") & Var("b")) | ~Var("c")
        assert expr.variables() == {"a", "b", "c"}

    def test_depth_and_ops(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        assert a.depth() == 0
        assert (a & b).depth() == 1
        assert ((a & b) | c).depth() == 2
        assert ((a & b) | c).count_ops() == 2

    def test_nary_requires_two(self):
        with pytest.raises(SynthesisError):
            And([Var("a")])

    def test_missing_variable_value(self):
        with pytest.raises(SynthesisError, match="no value"):
            Var("z").evaluate({})

    def test_mux_semantics(self):
        m = mux(Var("s"), Var("a"), Var("b"))
        assert m.evaluate({"s": True, "a": True, "b": False}) is True
        assert m.evaluate({"s": False, "a": True, "b": False}) is False

    def test_majority3_is_full_adder_carry(self):
        m = majority3(Var("a"), Var("b"), Var("c"))
        for bits in range(8):
            env = {
                "a": bool(bits & 1),
                "b": bool(bits & 2),
                "c": bool(bits & 4),
            }
            expected = sum(env.values()) >= 2
            assert m.evaluate(env) == expected

    def test_equality_and_hash(self):
        e1 = And((Var("a"), Var("b")))
        e2 = And((Var("a"), Var("b")))
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert e1 != Or((Var("a"), Var("b")))


class TestParser:
    def test_precedence_not_and_xor_or(self):
        # ~ binds tightest, then &, then ^, then |.
        expr = parse_expression("a | b & c ^ d")
        assert isinstance(expr, Or)
        xor_part = expr.children[1]
        assert isinstance(xor_part, Xor)
        assert isinstance(xor_part.left, And)

    def test_parentheses(self):
        expr = parse_expression("(a | b) & c")
        assert isinstance(expr, And)

    def test_both_negation_styles(self):
        for text in ("~a", "!a"):
            expr = parse_expression(text)
            assert isinstance(expr, Not)

    def test_constants(self):
        assert parse_expression("1") == TRUE
        assert parse_expression("0") == FALSE

    def test_nary_collection(self):
        expr = parse_expression("a & b & c & d")
        assert isinstance(expr, And)
        assert len(expr.children) == 4

    def test_round_trip_semantics(self):
        text = "~(a & b) ^ (c | ~d)"
        expr = parse_expression(text)
        for bits in range(16):
            env = {
                "a": bool(bits & 1), "b": bool(bits & 2),
                "c": bool(bits & 4), "d": bool(bits & 8),
            }
            expected = (not (env["a"] and env["b"])) != (env["c"] or not env["d"])
            assert expr.evaluate(env) == expected

    def test_errors(self):
        for bad in ("", "a &", "& a", "(a", "a b", "a @ b"):
            with pytest.raises(SynthesisError):
                parse_expression(bad)

    def test_parse_design(self):
        design = parse_design({"s": "a ^ b", "c": "a & b"})
        assert set(design) == {"s", "c"}
        assert isinstance(design["s"], Xor)
