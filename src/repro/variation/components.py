"""Variance components of process variation.

Section 8.1.1: "There are several types of process variations that can
occur within a plant: line-to-line; wafer-to-wafer; die-to-die, and
intra-die.  These process variations cause the delays of wires and gates
within a chip to vary, and chips are produced with a range of working
speeds."

Each component is a fractional 1-sigma delay variation.  Die-speed
sampling composes them: the first three add in quadrature as chip-level
mean shifts, while intra-die variation acts through the max over many
near-critical paths (it slows chips, never speeds them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class VariationError(ValueError):
    """Raised for unphysical variation parameters."""


@dataclass(frozen=True)
class VariationComponents:
    """Fractional 1-sigma delay variation per component.

    Attributes:
        line_to_line: drift between production lines/lots over time.
        wafer_to_wafer: wafer-scale processing differences.
        die_to_die: within-wafer gradients (radial etch/CMP profiles).
        intra_die: within-die random device mismatch.
        critical_paths: number of statistically independent near-critical
            paths whose max sets the die's speed.
    """

    line_to_line: float
    wafer_to_wafer: float
    die_to_die: float
    intra_die: float
    critical_paths: int = 64

    def __post_init__(self) -> None:
        for name in ("line_to_line", "wafer_to_wafer", "die_to_die",
                     "intra_die"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise VariationError(f"{name} must be in [0, 0.5)")
        if self.critical_paths < 1:
            raise VariationError("need at least one critical path")

    @property
    def chip_level_sigma(self) -> float:
        """Combined chip-mean 1-sigma (quadrature of global components)."""
        return math.sqrt(
            self.line_to_line**2 + self.wafer_to_wafer**2 + self.die_to_die**2
        )

    def scaled(self, factor: float) -> "VariationComponents":
        """All components scaled by a factor (process maturity model)."""
        if factor < 0:
            raise VariationError("scale factor must be non-negative")
        return VariationComponents(
            line_to_line=self.line_to_line * factor,
            wafer_to_wafer=self.wafer_to_wafer * factor,
            die_to_die=self.die_to_die * factor,
            intra_die=self.intra_die * factor,
            critical_paths=self.critical_paths,
        )


#: A freshly ramped process (Section 8.1.1: "when Intel and AMD start
#: using a new technology, the variation is about 30% to 40%" across the
#: produced bins -- a chip-level sigma near 8% puts the +-2 sigma bin
#: spread in that band).
NEW_PROCESS = VariationComponents(
    line_to_line=0.050,
    wafer_to_wafer=0.040,
    die_to_die=0.045,
    intra_die=0.030,
)

#: The same process after maturing ("this variation decreases as the
#: process matures").
MATURE_PROCESS = VariationComponents(
    line_to_line=0.028,
    wafer_to_wafer=0.022,
    die_to_die=0.025,
    intra_die=0.020,
)


def expected_bin_spread(components: VariationComponents,
                        coverage_sigma: float = 2.0) -> float:
    """Predicted fastest/slowest shipping-bin frequency ratio.

    With chip delay factors spread +-``coverage_sigma`` sigma around the
    mean, frequency spread is ``(1 + s*c) / (1 - s*c)``.
    """
    s = components.chip_level_sigma * coverage_sigma
    if s >= 1.0:
        raise VariationError("variation too large for the linear model")
    return (1.0 + s) / (1.0 - s)
