"""Datapath generators: adders, shifters, multipliers, comparators, ALU.

Importing this package registers every generator with the macro registry
in :mod:`repro.synth.macros`, making them available as the "pre-designed
macro cells" of Section 4.2.
"""

from repro.datapath.adders import (
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    simulate_adder,
)
from repro.datapath.alu import alu, simulate_alu
from repro.datapath.comparators import (
    equality_comparator,
    magnitude_comparator,
    parity_tree,
    simulate_comparator,
)
from repro.datapath.cpu import (
    cpu_execute_stage,
    reference_execute,
    simulate_execute_stage,
)
from repro.datapath.emitter import Emitter
from repro.datapath.encoders import (
    incrementer,
    leading_zero_counter,
    priority_encoder,
    simulate_encoder,
    simulate_incrementer,
    simulate_lzc,
)
from repro.datapath.multiplier import (
    array_multiplier,
    simulate_multiplier,
    wallace_multiplier,
)
from repro.datapath.shifter import barrel_shifter, simulate_shifter
from repro.synth.macros import register_macro

register_macro(
    "adder_ripple", ripple_carry_adder,
    "ripple-carry adder: O(n) depth baseline", category="adder",
)
register_macro(
    "adder_cla", carry_lookahead_adder,
    "hierarchical 4-bit-group carry-lookahead adder", category="adder",
)
register_macro(
    "adder_carry_select", carry_select_adder,
    "carry-select adder with duplicated blocks and mux chain", category="adder",
)
register_macro(
    "adder_kogge_stone", kogge_stone_adder,
    "Kogge-Stone parallel-prefix adder: O(log n) depth", category="adder",
)
register_macro(
    "barrel_shifter", barrel_shifter,
    "logarithmic left barrel shifter with zero fill", category="shifter",
)
register_macro(
    "multiplier_array", array_multiplier,
    "array multiplier: ripple partial-product accumulation", category="multiplier",
)
register_macro(
    "multiplier_wallace", wallace_multiplier,
    "Wallace-tree multiplier with prefix final adder", category="multiplier",
)
register_macro(
    "comparator_eq", equality_comparator,
    "equality comparator: XNOR + AND tree", category="comparator",
)
register_macro(
    "comparator_gt", magnitude_comparator,
    "unsigned magnitude comparator", category="comparator",
)
register_macro(
    "parity_tree", parity_tree,
    "odd-parity XOR reduction tree", category="comparator",
)
register_macro(
    "priority_encoder", priority_encoder,
    "priority encoder with valid flag", category="encoder",
)
register_macro(
    "leading_zero_counter", leading_zero_counter,
    "leading-zero counter (normalisation)", category="encoder",
)
register_macro(
    "incrementer", incrementer,
    "prefix-carry incrementer (program counters)", category="adder",
)
register_macro(
    "alu", alu,
    "composite ALU: add/sub + logic ops + result mux + zero flag",
    category="alu",
)
register_macro(
    "cpu_execute_stage", cpu_execute_stage,
    "CPU execute stage: bypass + shifter + ALU + flags + next-PC",
    category="alu",
)

__all__ = [
    "Emitter",
    "alu",
    "array_multiplier",
    "barrel_shifter",
    "carry_lookahead_adder",
    "carry_select_adder",
    "cpu_execute_stage",
    "reference_execute",
    "simulate_execute_stage",
    "equality_comparator",
    "incrementer",
    "kogge_stone_adder",
    "leading_zero_counter",
    "priority_encoder",
    "magnitude_comparator",
    "parity_tree",
    "ripple_carry_adder",
    "simulate_adder",
    "simulate_alu",
    "simulate_comparator",
    "simulate_encoder",
    "simulate_incrementer",
    "simulate_lzc",
    "simulate_multiplier",
    "simulate_shifter",
    "wallace_multiplier",
]
