"""Exporters: JSON-lines traces, flat metric dumps, and a human report.

Three consumers, three formats:

* :func:`trace_to_jsonl` -- one JSON object per finished span, in start
  order, for machine post-processing (``repro-gap gap --trace t.jsonl``);
* :func:`metrics_to_flat` -- a flat ``{str: scalar}`` dict in the same
  shape as the repo's ``BENCH_*.json`` artifacts, so metric dumps and
  benchmark trajectories share tooling;
* :func:`report` -- the terminal table behind ``--profile`` and
  ``repro-gap stats``.

All output is deterministic given a deterministic clock: keys are
sorted, floats are rounded to fixed precision, and spans are emitted in
start order.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Decimal places kept in exported floats (1 ns at second scale).
FLOAT_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), FLOAT_DIGITS)


def span_to_dict(span: Span) -> dict:
    """JSON-ready form of one finished span."""
    record = {
        "name": span.name,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "thread": span.thread,
        "start_s": _round(span.start_s),
        "duration_ms": _round(span.duration_s * 1e3),
        "self_ms": _round(span.self_s * 1e3),
    }
    if span.attributes:
        record["attrs"] = {
            key: (_round(val) if isinstance(val, float) else val)
            for key, val in sorted(span.attributes.items())
        }
    return record


def trace_to_jsonl(tracer: Tracer) -> str:
    """Finished spans as JSON-lines text (one object per line)."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True)
        for span in tracer.finished()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(tracer: Tracer, path: str) -> int:
    """Write the JSON-lines trace; returns the span count."""
    text = trace_to_jsonl(tracer)
    with open(path, "w") as handle:
        handle.write(text)
    return len(tracer.finished())


def _flat_label(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


def metrics_to_flat(registry: MetricsRegistry) -> dict:
    """Flatten every metric into a ``BENCH_*.json``-style scalar dict.

    Counters and gauges contribute one key per label set; histograms
    contribute count/mean/p50/p95/max summaries.
    """
    flat: dict = {}
    for metric in registry.all_metrics():
        for key in sorted(metric.series()):
            suffix = _flat_label(key)
            labels = dict(key)
            if isinstance(metric, Counter):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Gauge):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Histogram):
                base = metric.name + suffix
                flat[base + ".count"] = metric.count(**labels)
                flat[base + ".mean"] = _round(metric.mean(**labels))
                flat[base + ".p50"] = _round(metric.percentile(50, **labels))
                flat[base + ".p95"] = _round(metric.percentile(95, **labels))
                flat[base + ".max"] = _round(metric.percentile(100, **labels))
    return flat


def write_metrics(registry: MetricsRegistry, path: str) -> int:
    """Write the flat metrics dump as JSON; returns the key count."""
    flat = metrics_to_flat(registry)
    with open(path, "w") as handle:
        json.dump(flat, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(flat)


def report(tracer: Tracer, registry: MetricsRegistry) -> str:
    """Human-readable profile: span aggregates, then metrics."""
    lines: list[str] = []
    stats = tracer.aggregate()
    if stats:
        lines.append(
            f"{'span':<36s} {'calls':>6s} {'total ms':>10s} "
            f"{'self ms':>10s} {'mean ms':>10s}"
        )
        for entry in stats:
            lines.append(
                f"{entry.name:<36.36s} {entry.count:>6d} "
                f"{entry.total_s * 1e3:>10.2f} {entry.self_s * 1e3:>10.2f} "
                f"{entry.mean_s * 1e3:>10.2f}"
            )
    flat = metrics_to_flat(registry)
    if flat:
        if lines:
            lines.append("")
        lines.append(f"{'metric':<52s} {'value':>12s}")
        for key in sorted(flat):
            value = flat[key]
            rendered = (
                f"{value:.3f}" if isinstance(value, float) else str(value)
            )
            lines.append(f"{key:<52.52s} {rendered:>12s}")
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)
