"""End-to-end implementation flows: ASIC vs custom methodology.

Both flows are stage compositions on the declarative
:mod:`repro.flows.engine`; :mod:`repro.flows.cache` gives them
fingerprint-keyed stage caching and :mod:`repro.flows.sweep` fans
option sets across workers with the shared-prefix cache wired in.
"""

from repro.flows.asic import (
    ASIC_GRAPH,
    WORKLOADS,
    asic_flow_graph,
    run_asic_flow,
)
from repro.flows.custom import (
    CUSTOM_GRAPH,
    custom_flow_graph,
    run_custom_flow,
)
from repro.flows.engine import (
    FlowContext,
    FlowEngine,
    Stage,
    StageGraph,
    stage_fingerprint,
)
from repro.flows.options import (
    AsicFlowOptions,
    CustomFlowOptions,
    FlowOptions,
    options_fingerprint,
)
from repro.flows.results import FlowError, FlowResult, StageRecord
from repro.flows.sweep import run_flow_sweep, run_flow_sweep_report

__all__ = [
    "ASIC_GRAPH",
    "AsicFlowOptions",
    "CUSTOM_GRAPH",
    "CustomFlowOptions",
    "FlowContext",
    "FlowEngine",
    "FlowError",
    "FlowOptions",
    "FlowResult",
    "Stage",
    "StageGraph",
    "StageRecord",
    "WORKLOADS",
    "asic_flow_graph",
    "custom_flow_graph",
    "options_fingerprint",
    "run_asic_flow",
    "run_custom_flow",
    "run_flow_sweep",
    "run_flow_sweep_report",
    "stage_fingerprint",
]
