"""Discrete drive selection: snapping continuous sizes to a library menu.

Section 6.1: "the discrete transistor sizes of a library only approximate
the continuous transistor sizing of a custom design.  With a rich library
of sizes the performance impact of discrete sizes may be 2% to 7% or
less" (references [13] and [11]).

The utilities here quantify that statement on real netlists: size a
design continuously, snap every gate to the nearest stocked drive, and
measure the period penalty as a function of library granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.sizing.logical_effort import SizingError
from repro.sta.clocking import Clock
from repro.sta.engine import analyze
from repro.sta.timing_graph import WireParasitics


def snap_to_library(
    module: Module,
    continuous_library: CellLibrary,
    discrete_library: CellLibrary,
) -> Module:
    """Re-bind a continuously sized netlist onto a discrete library.

    Every instance is replaced by the discrete variant whose drive is
    nearest (geometrically) to its continuous drive.  The module is
    cloned; the original is untouched.

    Raises:
        SizingError: if the discrete library lacks a required function.
    """
    snapped = module.clone(f"{module.name}_discrete")
    for inst in snapped.iter_instances():
        cell = continuous_library.get(inst.cell_name)
        if cell.is_sequential:
            if inst.cell_name not in discrete_library:
                target = discrete_library.flip_flop()
                snapped.replace_cell(inst.name, target.name)
            continue
        if not discrete_library.has_base(cell.base_name):
            raise SizingError(
                f"discrete library {discrete_library.name} lacks "
                f"{cell.base_name}"
            )
        variants = discrete_library.drives_of(cell.base_name)
        nearest = min(
            variants,
            key=lambda c: abs(math.log(c.drive) - math.log(cell.drive)),
        )
        snapped.replace_cell(inst.name, nearest.name)
    return snapped


@dataclass(frozen=True)
class DiscretizationPenalty:
    """Continuous-vs-discrete comparison result.

    Attributes:
        continuous_period_ps: minimum period with continuous sizes.
        discrete_period_ps: minimum period after snapping.
        drive_count: drives per function in the discrete library.
    """

    continuous_period_ps: float
    discrete_period_ps: float
    drive_count: float

    @property
    def penalty_fraction(self) -> float:
        """Fractional slowdown from discretisation (0.05 = 5% slower)."""
        return self.discrete_period_ps / self.continuous_period_ps - 1.0


def discretization_penalty(
    module: Module,
    continuous_library: CellLibrary,
    discrete_library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
) -> DiscretizationPenalty:
    """Measure the period cost of snapping a sized netlist to a library."""
    continuous_report = analyze(module, continuous_library, clock, wire=wire)
    snapped = snap_to_library(module, continuous_library, discrete_library)
    discrete_report = analyze(snapped, discrete_library, clock, wire=wire)
    return DiscretizationPenalty(
        continuous_period_ps=continuous_report.min_period_ps,
        discrete_period_ps=discrete_report.min_period_ps,
        drive_count=discrete_library.mean_drives_per_base(),
    )


def geometric_drive_ladder(
    count: int, minimum: float = 1.0, maximum: float = 16.0
) -> tuple[float, ...]:
    """A geometric drive-strength menu with ``count`` rungs.

    Used by the library-richness sweeps: 2 rungs reproduce the paper's
    impoverished library, 8+ the rich one.
    """
    if count < 1:
        raise SizingError("need at least one drive")
    if count == 1:
        return (minimum,)
    if maximum <= minimum:
        raise SizingError("maximum drive must exceed minimum")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    return tuple(minimum * ratio**i for i in range(count))


def worst_case_snap_penalty(drive_ratio: float) -> float:
    """Upper-bound fractional delay cost of snapping one stage.

    For adjacent drives separated by ratio r, the worst continuous drive
    sits at the geometric midpoint; its effort delay degrades by at most
    sqrt(r) when forced to the smaller rung.  This analytic bound tracks
    the 2-7% measurements for rich (r ~ 1.4-2) ladders.
    """
    if drive_ratio <= 1.0:
        raise SizingError("drive ratio must exceed 1")
    return math.sqrt(drive_ratio) - 1.0
