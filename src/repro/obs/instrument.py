"""The global observability switch and instrumentation entry points.

Hot paths call the module-level helpers (:func:`span`, :func:`count`,
:func:`observe`, :func:`gauge`) unconditionally; each one is a single
flag check plus a no-op when observability is disabled, so the
instrumented code pays essentially nothing by default.  ``enable()``
swaps in a live :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` for the process.

Typical use (what ``repro-gap --profile`` does)::

    from repro import obs

    obs.enable()
    run_asic_flow()
    print(obs.render_report())
    obs.disable()
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.obs.clock import MONOTONIC, ClockFn
from repro.obs.export import report as _render
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

_enabled = False
_tracer = Tracer()
_metrics = MetricsRegistry()


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def enable(clock: ClockFn | None = None, fresh: bool = True) -> None:
    """Turn instrumentation on.

    Args:
        clock: optional time source override (tests pass a
            :class:`~repro.obs.clock.TickClock`).
        fresh: drop previously recorded spans/metrics first.
    """
    global _enabled
    if fresh:
        reset()
    if clock is not None:
        _tracer.clock = clock
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded data stays readable)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the helpers are live."""
    return _enabled


def reset() -> None:
    """Drop all recorded spans and metrics; keep the enable state."""
    _tracer.reset()
    _tracer.clock = MONOTONIC
    _metrics.reset()


def get_tracer() -> Tracer:
    """The process-global tracer (read it to export traces)."""
    return _tracer


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def span(name: str, **attrs: Any):
    """Open a trace span, or a shared no-op when disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator: span per call, checked at call time (not import time)."""

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            with _tracer.span(label):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def count(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter (no-op when disabled)."""
    if _enabled:
        _metrics.counter(name).inc(value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if _enabled:
        _metrics.histogram(name).observe(value, **labels)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge (no-op when disabled)."""
    if _enabled:
        _metrics.gauge(name).set(value, **labels)


def render_report() -> str:
    """The human profile table for whatever has been recorded."""
    return _render(_tracer, _metrics)
