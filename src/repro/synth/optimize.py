"""Structural logic optimisation passes.

Pre-mapping cleanups applied to expression trees:

* constant folding and identity removal;
* double-negation elimination;
* flattening of nested same-operator nodes into n-ary form;
* balanced decomposition of wide operators (a chain of ANDs becomes a
  tree, cutting depth from n-1 to ceil(log2 n) -- the single biggest
  structural lever on "levels of logic on the critical path", Section 4).
"""

from __future__ import annotations

from repro.synth.ast import (
    And,
    Const,
    Expr,
    FALSE,
    Not,
    Or,
    SynthesisError,
    TRUE,
    Var,
    Xor,
)


def simplify(expr: Expr) -> Expr:
    """Constant-fold and remove double negations, bottom-up."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        child = simplify(expr.child)
        if isinstance(child, Const):
            return FALSE if child.value else TRUE
        if isinstance(child, Not):
            return child.child
        return Not(child)
    if isinstance(expr, Xor):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if isinstance(left, Const):
            return simplify(Not(right)) if left.value else right
        if isinstance(right, Const):
            return simplify(Not(left)) if right.value else left
        if left == right:
            return FALSE
        return Xor(left, right)
    if isinstance(expr, (And, Or)):
        dominant = FALSE if isinstance(expr, And) else TRUE
        identity = TRUE if isinstance(expr, And) else FALSE
        children = []
        for raw in expr.children:
            child = simplify(raw)
            if child == dominant:
                return dominant
            if child == identity:
                continue
            children.append(child)
        unique = []
        for child in children:
            if child not in unique:
                unique.append(child)
        for child in unique:
            complement = child.child if isinstance(child, Not) else Not(child)
            if complement in unique:
                return dominant  # x & ~x = 0, x | ~x = 1
        if not unique:
            return identity
        if len(unique) == 1:
            return unique[0]
        return type(expr)(unique)
    raise SynthesisError(f"unknown expression node {type(expr).__name__}")


def flatten(expr: Expr) -> Expr:
    """Merge nested same-operator AND/OR nodes into single n-ary nodes.

    ``(a & (b & c)) & d`` becomes ``a & b & c & d``, exposing the full
    operator width to the balancer and the mapper's wide-gate selection.
    """
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return Not(flatten(expr.child))
    if isinstance(expr, Xor):
        return Xor(flatten(expr.left), flatten(expr.right))
    if isinstance(expr, (And, Or)):
        op = type(expr)
        merged: list[Expr] = []
        for raw in expr.children:
            child = flatten(raw)
            if isinstance(child, op):
                merged.extend(child.children)
            else:
                merged.append(child)
        return op(merged)
    raise SynthesisError(f"unknown expression node {type(expr).__name__}")


def balance(expr: Expr, max_arity: int = 2) -> Expr:
    """Decompose wide AND/OR nodes into balanced trees of bounded arity.

    Children are paired shallowest-first (a Huffman-style construction),
    which minimises the depth of the resulting tree when operand depths
    are unequal -- the "balance the logic in pipeline stages" idea of
    Section 4.1 applied at the cone level.
    """
    if max_arity < 2:
        raise SynthesisError("max arity must be at least 2")
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return Not(balance(expr.child, max_arity))
    if isinstance(expr, Xor):
        return Xor(balance(expr.left, max_arity), balance(expr.right, max_arity))
    if isinstance(expr, (And, Or)):
        op = type(expr)
        items = [balance(child, max_arity) for child in expr.children]
        # Huffman-style: repeatedly group the shallowest max_arity operands.
        while len(items) > max_arity:
            items.sort(key=lambda e: e.depth())
            group = items[:max_arity]
            items = items[max_arity:]
            items.append(op(group))
        if len(items) == 1:
            return items[0]
        return op(items)
    raise SynthesisError(f"unknown expression node {type(expr).__name__}")


def optimize(expr: Expr, max_arity: int = 2) -> Expr:
    """Full pre-mapping pipeline: simplify, flatten, balance, simplify."""
    return simplify(balance(flatten(simplify(expr)), max_arity))


def optimize_design(
    design: dict[str, Expr], max_arity: int = 2
) -> dict[str, Expr]:
    """Apply :func:`optimize` to every output of a multi-output design."""
    return {out: optimize(expr, max_arity) for out, expr in design.items()}
