"""Tests for the encoder-family datapath generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import poor_asic_library, rich_asic_library
from repro.datapath import (
    incrementer,
    leading_zero_counter,
    priority_encoder,
    simulate_encoder,
    simulate_incrementer,
    simulate_lzc,
)
from repro.synth import SynthesisError, list_macros
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
POOR = poor_asic_library(CMOS250_ASIC)


def reference_priority(bits, value):
    for i in range(bits):
        if (value >> i) & 1:
            return i, True
    return 0, False


def reference_lzc(bits, value):
    count = 0
    for i in range(bits - 1, -1, -1):
        if (value >> i) & 1:
            break
        count += 1
    return count


class TestPriorityEncoder:
    @pytest.mark.parametrize("bits", [2, 4, 5, 8])
    def test_exhaustive(self, bits):
        module = priority_encoder(bits, RICH)
        module.assert_well_formed()
        for value in range(1 << bits):
            index, valid = simulate_encoder(module, RICH, bits, value)
            ref_index, ref_valid = reference_priority(bits, value)
            assert valid == ref_valid, value
            if valid:
                assert index == ref_index, value

    def test_poor_library(self):
        module = priority_encoder(4, POOR)
        index, valid = simulate_encoder(module, POOR, 4, 0b1100)
        assert (index, valid) == (2, True)

    def test_width_validation(self):
        with pytest.raises(SynthesisError):
            priority_encoder(1, RICH)


class TestLeadingZeroCounter:
    @pytest.mark.parametrize("bits", [2, 4, 7, 8])
    def test_exhaustive(self, bits):
        module = leading_zero_counter(bits, RICH)
        module.assert_well_formed()
        for value in range(1 << bits):
            assert simulate_lzc(module, RICH, bits, value) == reference_lzc(
                bits, value
            ), value

    def test_all_zero_gives_width(self):
        module = leading_zero_counter(8, RICH)
        assert simulate_lzc(module, RICH, 8, 0) == 8


class TestIncrementer:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_exhaustive(self, bits):
        module = incrementer(bits, RICH)
        module.assert_well_formed()
        for value in range(1 << bits):
            q, cout = simulate_incrementer(module, RICH, bits, value)
            expected = value + 1
            assert q == expected % (1 << bits), value
            assert cout == expected >> bits, value

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(0, (1 << 12) - 1))
    def test_random_12bit(self, value):
        q, cout = simulate_incrementer(_INC12, RICH, 12, value)
        expected = value + 1
        assert q == expected % (1 << 12)
        assert cout == expected >> 12

    def test_logarithmic_depth(self):
        from repro.netlist import logic_depth

        d8 = logic_depth(incrementer(8, RICH))
        d32 = logic_depth(incrementer(32, RICH))
        assert d32 <= d8 + 3


_INC12 = incrementer(12, RICH)


class TestRegistry:
    def test_new_macros_registered(self):
        names = {spec.name for spec in list_macros()}
        assert {
            "priority_encoder", "leading_zero_counter", "incrementer"
        } <= names

    def test_encoder_category(self):
        encoders = list_macros(category="encoder")
        assert len(encoders) == 2
