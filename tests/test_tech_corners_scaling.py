"""Unit tests for repro.tech.corners and repro.tech.scaling."""

import math

import pytest

from repro.tech import (
    CMOS250_ASIC,
    CornerType,
    ProcessCorner,
    STANDARD_CORNERS,
    TechnologyError,
    generations_equivalent,
    get_corner,
    migrate_asic,
    migrate_custom,
    project_technology,
    speedup_over_generations,
    typical_to_best_speedup,
    worst_case_to_best_speedup,
    worst_case_to_typical_speedup,
    years_equivalent,
)


class TestCorners:
    def test_typical_is_identity(self):
        corner = get_corner(CornerType.TYPICAL)
        assert corner.apply(100.0) == pytest.approx(100.0)
        assert corner.frequency_factor() == pytest.approx(1.0)

    def test_worst_case_matches_paper_range(self):
        # Section 8: typical 60-70% faster than worst case.
        speedup = worst_case_to_typical_speedup()
        assert 1.60 <= speedup <= 1.70

    def test_best_bins_match_paper_range(self):
        # Section 8: fastest bins 20-40% faster than typical.
        speedup = typical_to_best_speedup()
        assert 1.20 <= speedup <= 1.40

    def test_overall_speedup_near_90_percent(self):
        # Section 8: overall ~90% faster; our midpoint corners give ~2.1x,
        # bracketing 1.9x.
        speedup = worst_case_to_best_speedup()
        assert 1.85 <= speedup <= 2.20

    def test_corner_ordering(self):
        derates = [
            STANDARD_CORNERS[k].delay_derate
            for k in (
                CornerType.WORST_CASE,
                CornerType.SLOW,
                CornerType.TYPICAL,
                CornerType.FAST,
                CornerType.BEST_CASE,
            )
        ]
        assert derates == sorted(derates, reverse=True)

    def test_apply_rejects_negative_delay(self):
        with pytest.raises(TechnologyError):
            get_corner(CornerType.TYPICAL).apply(-1.0)

    def test_invalid_derate_rejected(self):
        with pytest.raises(TechnologyError):
            ProcessCorner(corner_type=CornerType.TYPICAL, delay_derate=0.0)


class TestScaling:
    def test_gap_is_about_five_generations(self):
        # Section 2: the 6-8x gap "is equivalent to that of five process
        # generations".
        assert 4.0 < generations_equivalent(6.0) < 5.2
        assert 4.5 < generations_equivalent(8.0) < 5.5

    def test_gap_is_about_a_decade(self):
        assert 8.0 < years_equivalent(6.0) < 11.0
        assert 9.0 < years_equivalent(8.0) < 11.0

    def test_round_trip(self):
        for ratio in (1.5, 2.0, 6.0, 18.0):
            gens = generations_equivalent(ratio)
            assert speedup_over_generations(gens) == pytest.approx(ratio)

    def test_invalid_ratio(self):
        with pytest.raises(TechnologyError):
            generations_equivalent(0.0)

    def test_projection_shrinks_geometry(self):
        new = project_technology(CMOS250_ASIC, 1)
        assert new.drawn_length_um < CMOS250_ASIC.drawn_length_um
        assert new.leff_um < CMOS250_ASIC.leff_um
        assert new.vdd < CMOS250_ASIC.vdd
        assert new.fo4_delay_ps < CMOS250_ASIC.fo4_delay_ps

    def test_projection_zero_generations_is_identity_geometry(self):
        new = project_technology(CMOS250_ASIC, 0)
        assert new.leff_um == pytest.approx(CMOS250_ASIC.leff_um)

    def test_projection_rejects_negative(self):
        with pytest.raises(TechnologyError):
            project_technology(CMOS250_ASIC, -1)

    def test_wire_resistance_rises_on_shrink(self):
        new = project_technology(CMOS250_ASIC, 1)
        assert (
            new.interconnect.resistance_ohm_per_um
            > CMOS250_ASIC.interconnect.resistance_ohm_per_um
        )


class TestMigration:
    def test_asic_migration_full_speedup_low_effort(self):
        result = migrate_asic(CMOS250_ASIC, 1)
        assert result.speedup == pytest.approx(1.5)
        assert result.redesign_effort < 0.2

    def test_custom_migration_without_redesign_loses_speed(self):
        full = migrate_custom(CMOS250_ASIC, 1, redesign=True)
        partial = migrate_custom(CMOS250_ASIC, 1, redesign=False)
        assert full.speedup == pytest.approx(1.5)
        assert partial.speedup < full.speedup
        assert partial.redesign_effort < full.redesign_effort

    def test_custom_redesign_effort_scales_with_generations(self):
        one = migrate_custom(CMOS250_ASIC, 1)
        two = migrate_custom(CMOS250_ASIC, 2)
        assert two.redesign_effort > one.redesign_effort
        assert two.speedup == pytest.approx(1.5**2)
