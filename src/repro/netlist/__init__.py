"""Gate-level netlist substrate: nets, modules, graph views, Verilog I/O."""

from repro.netlist.graph import (
    CombinationalLoopError,
    fanin_cone,
    fanout_cone,
    find_combinational_loop,
    full_graph,
    instance_graph,
    levelize,
    logic_depth,
    max_fanout,
    primary_input_instances,
    primary_output_instances,
    topological_order,
)
from repro.netlist.module import Module
from repro.netlist.nets import (
    Instance,
    Net,
    NetlistError,
    Port,
    PortDirection,
    is_port_ref,
    port_ref,
    port_ref_name,
)
from repro.netlist.stats import (
    NetlistStats,
    collect_stats,
    depth_histogram,
    format_stats,
)
from repro.netlist.verilog_io import from_verilog, to_verilog

__all__ = [
    "NetlistStats",
    "collect_stats",
    "depth_histogram",
    "format_stats",
    "CombinationalLoopError",
    "Instance",
    "Module",
    "Net",
    "NetlistError",
    "Port",
    "PortDirection",
    "fanin_cone",
    "fanout_cone",
    "find_combinational_loop",
    "from_verilog",
    "full_graph",
    "instance_graph",
    "is_port_ref",
    "levelize",
    "logic_depth",
    "max_fanout",
    "port_ref",
    "port_ref_name",
    "primary_input_instances",
    "primary_output_instances",
    "to_verilog",
    "topological_order",
]
