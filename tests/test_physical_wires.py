"""Unit tests for repro.physical.wires and geometry."""

import math

import pytest

from repro.physical import (
    ChipWireModel,
    GeometryError,
    Point,
    Rect,
    bounding_box,
    half_perimeter_wirelength,
    optimal_repeater_plan,
    optimal_segment_um,
    unrepeated_wire_delay_ps,
    wire_delay_ps,
)
from repro.tech import CMOS250_ASIC, TechnologyError


class TestGeometry:
    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7
        assert Point(0, 0).euclidean_to(Point(3, 4)) == pytest.approx(5.0)

    def test_rect_properties(self):
        r = Rect(1, 2, 4, 6)
        assert r.area == 24
        assert r.center == Point(3, 5)
        assert r.aspect_ratio == pytest.approx(1.5)
        assert r.contains(Point(3, 5))
        assert not r.contains(Point(10, 10))

    def test_overlap(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # shared edge is legal
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_degenerate_rect_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 1)

    def test_hpwl(self):
        pts = [Point(0, 0), Point(4, 1), Point(2, 5)]
        assert half_perimeter_wirelength(pts) == pytest.approx(9.0)
        with pytest.raises(GeometryError):
            half_perimeter_wirelength([])

    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(4, 5, 2, 2)])
        assert (box.width, box.height) == (6, 7)


class TestWireDelay:
    def test_unrepeated_quadratic_in_length(self):
        # With a strong driver the distributed RC term dominates and the
        # delay grows quadratically with length.
        d1 = unrepeated_wire_delay_ps(
            CMOS250_ASIC, 5000.0, driver_resistance_ohm=50.0
        )
        d2 = unrepeated_wire_delay_ps(
            CMOS250_ASIC, 10000.0, driver_resistance_ohm=50.0
        )
        assert 3.0 < d2 / d1 < 4.5

    def test_unit_driver_dominated_regime_is_linear(self):
        # With the unit driver, short wires are charge-limited: ~linear.
        d1 = unrepeated_wire_delay_ps(CMOS250_ASIC, 500.0)
        d2 = unrepeated_wire_delay_ps(CMOS250_ASIC, 1000.0)
        assert 1.8 < d2 / d1 < 2.6

    def test_repeaters_linearise_long_wires(self):
        d5 = wire_delay_ps(CMOS250_ASIC, 5000.0)
        d10 = wire_delay_ps(CMOS250_ASIC, 10000.0)
        assert 1.6 < d10 / d5 < 2.4  # roughly linear

    def test_repeaters_never_hurt(self):
        for length in (50.0, 500.0, 5000.0, 20000.0):
            assert wire_delay_ps(CMOS250_ASIC, length) <= (
                unrepeated_wire_delay_ps(CMOS250_ASIC, length) + 1e-9
            )

    def test_short_wire_plan_has_no_repeaters(self):
        plan = optimal_repeater_plan(CMOS250_ASIC, 100.0)
        assert plan.num_repeaters == 0

    def test_long_wire_plan_spacing_near_optimal(self):
        seg = optimal_segment_um(CMOS250_ASIC)
        plan = optimal_repeater_plan(CMOS250_ASIC, 10.0 * seg)
        assert plan.num_repeaters >= 8
        assert plan.segment_um == pytest.approx(seg, rel=0.25)

    def test_wider_wire_is_faster_when_resistance_dominates(self):
        # Section 6: widening cuts resistance; it pays off when the wire
        # (not the driver) limits the delay -- i.e. with sized drivers.
        tech = CMOS250_ASIC
        wide_width = 4 * tech.interconnect.min_width_um
        narrow = wire_delay_ps(tech, 8000.0)
        wide = wire_delay_ps(tech, 8000.0, width_um=wide_width)
        assert wide < narrow

    def test_wider_wire_hurts_weak_drivers(self):
        # The flip side: a unit driver sees mostly extra capacitance.
        tech = CMOS250_ASIC
        wide_width = 4 * tech.interconnect.min_width_um
        narrow = unrepeated_wire_delay_ps(tech, 1000.0)
        wide = unrepeated_wire_delay_ps(tech, 1000.0, width_um=wide_width)
        assert wide > narrow

    def test_invalid_inputs(self):
        with pytest.raises(TechnologyError):
            unrepeated_wire_delay_ps(CMOS250_ASIC, -1.0)
        with pytest.raises(TechnologyError):
            optimal_repeater_plan(CMOS250_ASIC, -5.0)


class TestChipModel:
    def test_cross_chip_dominates_local(self):
        chip = ChipWireModel(100.0, CMOS250_ASIC)
        assert chip.cross_chip_delay_ps() > 3 * chip.module_local_delay_ps(1.0)

    def test_cross_chip_wire_is_many_fo4(self):
        # A repeated wire across a 100 mm^2 die costs on the order of ten
        # FO4 -- the Section 5 premise that global wires dominate paths.
        chip = ChipWireModel(100.0, CMOS250_ASIC)
        fo4 = chip.cross_chip_delay_ps() / CMOS250_ASIC.fo4_delay_ps
        assert 8.0 < fo4 < 25.0

    def test_floorplanning_speedup_up_to_25_percent(self):
        # Section 5.1: localising the critical path vs letting it cross a
        # 100 mm^2 chip "may increase circuit speed by up to 25%".
        chip = ChipWireModel(100.0, CMOS250_ASIC)
        logic = 44.0 * CMOS250_ASIC.fo4_delay_ps  # a Xtensa-class path
        speedup = chip.floorplanning_speedup(logic, module_area_mm2=0.5)
        assert 1.10 < speedup < 1.45

    def test_speedup_monotone_in_hops(self):
        chip = ChipWireModel(100.0, CMOS250_ASIC)
        logic = 2000.0
        s1 = chip.floorplanning_speedup(logic, global_hops=1)
        s2 = chip.floorplanning_speedup(logic, global_hops=2)
        assert s2 > s1 > 1.0

    def test_validation(self):
        with pytest.raises(TechnologyError):
            ChipWireModel(0.0, CMOS250_ASIC)
        chip = ChipWireModel(100.0, CMOS250_ASIC)
        with pytest.raises(TechnologyError):
            chip.floorplanning_speedup(-1.0)
        with pytest.raises(TechnologyError):
            chip.module_local_delay_ps(0.0)
