"""Chip assembly: floorplanning a multi-block design (Section 5, live).

Assembles a small SoC-like die out of functional blocks (execute stage,
multiplier, shifter, control, memories as area blocks), floorplans it
with the simulated-annealing slicing floorplanner under its inter-block
netlist, and prices the global wires both ways:

* a connectivity-aware floorplan (blocks that talk sit together);
* a connectivity-blind floorplan (area-only packing).

The delta on the critical inter-block path is the Section 5 gain, at
chip scale rather than the placer's gate scale.

Run with::

    python examples/chip_assembly.py
"""

from repro.netlist import collect_stats, format_stats
from repro.cells import rich_asic_library
from repro.datapath import cpu_execute_stage
from repro.physical import Block, SlicingFloorplanner, wire_delay_ps
from repro.tech import CMOS250_ASIC

#: Block areas in um^2 (realistic 0.25 um relative sizes).
BLOCKS = [
    Block("exec", 1.2e6),
    Block("mult", 1.8e6),
    Block("shift", 0.5e6),
    Block("ctrl", 0.4e6),
    Block("icache", 3.0e6),
    Block("dcache", 3.0e6),
    Block("regfile", 0.8e6),
]

#: Inter-block connectivity: the critical loop is
#: regfile -> exec -> dcache -> regfile, with control fanning out.
NETS = [
    ["regfile", "exec"], ["regfile", "exec"], ["exec", "dcache"],
    ["dcache", "regfile"], ["exec", "shift"], ["exec", "mult"],
    ["ctrl", "exec"], ["ctrl", "mult"], ["ctrl", "shift"],
    ["icache", "ctrl"], ["icache", "regfile"],
]

#: The inter-block hops on the critical path.
CRITICAL_PATH = [("regfile", "exec"), ("exec", "dcache"),
                 ("dcache", "regfile")]


def path_wire_delay(plan) -> float:
    total = 0.0
    for a, b in CRITICAL_PATH:
        length = plan.center_of(a).manhattan_to(plan.center_of(b))
        total += wire_delay_ps(CMOS250_ASIC, length)
    return total


def main() -> None:
    print("block inventory:")
    for block in BLOCKS:
        print(f"  {block.name:<8s} {block.area_um2 / 1e6:5.1f} mm2")
    print()

    aware = SlicingFloorplanner(
        BLOCKS, nets=NETS, wirelength_weight=0.7, seed=3
    ).run(iterations=2500)
    blind = SlicingFloorplanner(
        BLOCKS, nets=None, wirelength_weight=0.0, seed=3
    ).run(iterations=2500)

    for label, result in (("connectivity-aware", aware),
                          ("area-only", blind)):
        plan = result.floorplan
        die = plan.die
        wl = plan.wirelength(NETS)
        path = path_wire_delay(plan)
        print(f"{label} floorplan:")
        print(f"  die {die.width / 1000:.2f} x {die.height / 1000:.2f} mm, "
              f"utilisation {100 * plan.utilization():.0f}%")
        print(f"  inter-block wirelength {wl / 1000:.1f} mm")
        print(f"  critical loop wire delay {path:.0f} ps "
              f"({path / CMOS250_ASIC.fo4_delay_ps:.1f} FO4)")
        print()

    gain = path_wire_delay(blind.floorplan) / path_wire_delay(aware.floorplan)
    print(f"connectivity-aware floorplanning speeds the critical loop's "
          f"wires by {gain:.2f}x")
    print("(Section 5: 'careful floorplanning and placement to minimize")
    print(" wire lengths may increase circuit speed by up to 25%')")
    print()

    # Bonus: what lives inside the exec block.
    library = rich_asic_library(CMOS250_ASIC)
    exec_block = cpu_execute_stage(8, library)
    print("inside the exec block:")
    print(format_stats(collect_stats(exec_block, library), top=6))


if __name__ == "__main__":
    main()
