"""Unit tests for repro.synth.mapper and repro.synth.simulate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import poor_asic_library, rich_asic_library
from repro.netlist import logic_depth
from repro.synth import (
    SimulationError,
    SynthesisError,
    TechnologyMapper,
    Var,
    exhaustive_equivalent,
    map_design,
    parse_expression,
    simulate_combinational,
    simulate_sequential,
)
from repro.tech import CMOS250_ASIC


@pytest.fixture(scope="module")
def rich():
    return rich_asic_library(CMOS250_ASIC)


@pytest.fixture(scope="module")
def poor():
    return poor_asic_library(CMOS250_ASIC)


def check_against_expr(module, library, text):
    """Mapped netlist must match the expression on all input vectors."""
    expr = parse_expression(text)
    ports = module.inputs()
    for bits in range(1 << len(ports)):
        vec = {p: bool((bits >> i) & 1) for i, p in enumerate(ports)}
        out = simulate_combinational(module, library, vec)
        assert out["y"] == expr.evaluate(vec), f"mismatch at {vec}"


class TestMapping:
    @pytest.mark.parametrize(
        "text",
        [
            "a & b",
            "~(a & b)",
            "a | b | c",
            "a ^ b",
            "~(a ^ b)",
            "(a & b) | (~c & d)",
            "~(a | b) & (c ^ d)",
            "a & b & c & d",
            "a",
            "~a",
        ],
    )
    def test_rich_mapping_is_correct(self, rich, text):
        module = map_design({"y": parse_expression(text)}, rich)
        module.assert_well_formed()
        check_against_expr(module, rich, text)

    @pytest.mark.parametrize(
        "text",
        [
            "a & b",
            "a | b | c",
            "a ^ b",
            "(a & b) | (~c & d)",
            "a & b & c & d",
        ],
    )
    def test_poor_mapping_is_correct(self, poor, text):
        module = map_design({"y": parse_expression(text)}, poor)
        module.assert_well_formed()
        check_against_expr(module, poor, text)

    def test_poor_library_needs_more_gates(self, rich, poor):
        # AND must be built as NAND+INV without dual polarity.
        text = "(a & b & c) | (d & e)"
        expr = parse_expression(text)
        rich_mod = map_design({"y": expr}, rich)
        poor_mod = map_design({"y": expr}, poor)
        assert poor_mod.instance_count() > rich_mod.instance_count()

    def test_sharing_common_subexpressions(self, rich):
        # (a&b) used twice should be built once.
        expr = parse_expression("(a & b) ^ ((a & b) | c)")
        module = map_design({"y": expr}, rich)
        and_gates = [
            i for i in module.iter_instances() if i.cell_name.startswith("AND2")
        ]
        assert len(and_gates) == 1

    def test_multi_output_design(self, rich):
        module = map_design(
            {"s": parse_expression("a ^ b"), "c": parse_expression("a & b")},
            rich,
            name="half_adder",
        )
        out = simulate_combinational(module, rich, {"a": True, "b": True})
        assert out == {"s": False, "c": True}

    def test_constant_output_rejected(self, rich):
        with pytest.raises(SynthesisError, match="constant"):
            map_design({"y": parse_expression("a & ~a")}, rich)

    def test_input_order_respected(self, rich):
        mapper = TechnologyMapper(rich)
        module = mapper.map_design(
            {"y": parse_expression("a & b")}, input_order=["b", "a"]
        )
        assert module.inputs() == ["b", "a"]

    def test_input_order_must_cover(self, rich):
        mapper = TechnologyMapper(rich)
        with pytest.raises(SynthesisError, match="omits"):
            mapper.map_design({"y": parse_expression("a & b")}, input_order=["a"])

    def test_wide_and_decomposed(self, rich):
        expr = parse_expression("&".join(f"v{i}" for i in range(10)))
        module = map_design({"y": expr}, rich)
        module.assert_well_formed()
        # Balanced tree of AND4/AND3/AND2: depth ~2-3 plus output buffer.
        assert logic_depth(module) <= 5


class TestSimulation:
    def test_missing_input_raises(self, rich):
        module = map_design({"y": parse_expression("a & b")}, rich)
        with pytest.raises(SimulationError, match="missing input"):
            simulate_combinational(module, rich, {"a": True})

    def test_sequential_rejected_in_comb_sim(self, rich):
        from repro.netlist import Module

        m = Module("seq")
        m.add_input("d")
        m.add_input("clk")
        m.add_output("q")
        m.add_instance(
            "ff", rich.flip_flop().name,
            inputs={"D": "d", "CK": "clk"}, outputs={"Q": "q"},
        )
        with pytest.raises(SimulationError, match="sequential"):
            simulate_combinational(m, rich, {"d": True, "clk": False})

    def test_sequential_pipeline_delay(self, rich):
        # y = register(a): output lags input by one cycle.
        from repro.netlist import Module

        m = Module("reg")
        m.add_input("a")
        m.add_input("clk")
        m.add_output("q")
        m.add_instance(
            "ff", rich.flip_flop().name,
            inputs={"D": "a", "CK": "clk"}, outputs={"Q": "q"},
        )
        stream = [{"a": bool(i % 2)} for i in range(6)]
        trace = simulate_sequential(m, rich, stream)
        assert [t["q"] for t in trace] == [False] + [bool(i % 2) for i in range(5)]

    def test_exhaustive_equivalence_of_libraries(self, rich, poor):
        text = "(a & b) | (c ^ d)"
        expr = parse_expression(text)
        mod_rich = map_design({"y": expr}, rich)
        mod_poor = map_design({"y": expr}, poor)
        assert exhaustive_equivalent(mod_rich, rich, mod_poor, poor)

    def test_exhaustive_guard(self, rich):
        wide = parse_expression("&".join(f"v{i}" for i in range(14)))
        module = map_design({"y": wide}, rich)
        with pytest.raises(SimulationError, match="exceeds"):
            exhaustive_equivalent(module, rich, module, rich, max_inputs=12)


# ----------------------------------------------------------------------
# Property: mapping preserves semantics on random expressions
# ----------------------------------------------------------------------

_VARS = ["a", "b", "c", "d"]


@st.composite
def expr_text(draw, depth=0):
    if depth > 3 or (depth > 0 and draw(st.booleans())):
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 3))
    left = draw(expr_text(depth=depth + 1))
    right = draw(expr_text(depth=depth + 1))
    if kind == 0:
        return f"~({left})"
    op = {1: "&", 2: "|", 3: "^"}[kind]
    return f"({left} {op} {right})"


@settings(max_examples=40, deadline=None)
@given(expr_text())
def test_mapping_preserves_semantics_property(text):
    rich = _RICH
    expr = parse_expression(text)
    try:
        module = map_design({"y": expr}, rich)
    except SynthesisError:
        return  # constant-valued expression: legitimately unmappable
    for bits in range(16):
        env = {v: bool((bits >> i) & 1) for i, v in enumerate(_VARS)}
        vec = {p: env[p] for p in module.inputs()}
        out = simulate_combinational(module, rich, vec)
        assert out["y"] == expr.evaluate(env)


_RICH = rich_asic_library(CMOS250_ASIC)
