"""Down-binning and over-clocking headroom (Section 8.1.1).

"...down-binning of chips with higher clock frequency to meet demand
(when stores of slower versions are depleted, evidenced by the ease of
over-clocking many chips), which extend the range of clock speeds
typically seen within a technology generation."

The model: a vendor sells against a bin ladder; when demand for slow
grades exceeds their natural supply, faster dies are *down-binned* (sold
below their capability).  The buyer-visible consequence is over-clocking
headroom: the distribution of (actual capability / rated speed) across
shipped parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.variation.components import VariationError
from repro.variation.montecarlo import SpeedDistribution


@dataclass(frozen=True)
class ShippedPart:
    """One shipped chip.

    Attributes:
        rated_mhz: the grade it was sold as.
        capable_mhz: what the die can actually do.
    """

    rated_mhz: float
    capable_mhz: float

    @property
    def headroom(self) -> float:
        """Over-clocking margin: capable over rated."""
        return self.capable_mhz / self.rated_mhz


@dataclass(frozen=True)
class BinningOutcome:
    """Result of demand-driven binning.

    Attributes:
        parts_per_bin: rated frequency -> shipped count.
        down_binned_fraction: share of parts sold below capability bin.
        mean_headroom: average over-clocking margin across shipments.
        p90_headroom: 90th-percentile margin (the enthusiast's chip).
    """

    parts_per_bin: dict[float, int]
    down_binned_fraction: float
    mean_headroom: float
    p90_headroom: float


def ship_against_demand(
    distribution: SpeedDistribution,
    bin_edges_mhz: list[float],
    demand_fractions: list[float],
    seed: int = 3,
) -> BinningOutcome:
    """Allocate a die population to demanded grades, down-binning as
    needed.

    Each die is first assigned its natural (highest qualifying) grade;
    if a slower grade is over-demanded relative to natural supply, the
    fastest surplus dies are re-labelled downward to fill it.

    Args:
        distribution: sampled die population.
        bin_edges_mhz: ascending grade frequencies.
        demand_fractions: demanded share per grade (same length, sums to
            <= 1; the remainder is flexible demand served naturally).
        seed: RNG seed for tie-shuffling.

    Raises:
        VariationError: for inconsistent ladders/demands.
    """
    edges = list(bin_edges_mhz)
    if edges != sorted(edges) or not edges:
        raise VariationError("bin edges must be ascending and non-empty")
    if len(demand_fractions) != len(edges):
        raise VariationError("demand must match bin count")
    if any(d < 0 for d in demand_fractions) or sum(demand_fractions) > 1.0001:
        raise VariationError("demand fractions must be >= 0 and sum <= 1")

    freqs = np.sort(distribution.frequencies_mhz)[::-1]  # fastest first
    sellable = freqs[freqs >= edges[0]]
    n = len(sellable)
    if n == 0:
        raise VariationError("no sellable dies at the lowest grade")
    demanded_counts = [int(round(d * n)) for d in demand_fractions]

    # Natural grade of each die: highest edge it meets.
    natural = np.searchsorted(edges, sellable, side="right") - 1

    parts: list[ShippedPart] = []
    remaining = sellable.tolist()
    remaining_natural = natural.tolist()
    # Fill demanded grades from slowest upward; shortfalls pull the
    # *fastest remaining* dies down (that is down-binning).
    for grade_idx in range(len(edges)):
        want = demanded_counts[grade_idx]
        chosen = 0
        # Natural fills first (slowest suitable dies).
        i = len(remaining) - 1
        while i >= 0 and chosen < want:
            if remaining_natural[i] == grade_idx:
                parts.append(
                    ShippedPart(edges[grade_idx], remaining.pop(i))
                )
                remaining_natural.pop(i)
                chosen += 1
            i -= 1
        # Down-bin the fastest surplus to cover the rest.
        while chosen < want and remaining:
            parts.append(ShippedPart(edges[grade_idx], remaining.pop(0)))
            remaining_natural.pop(0)
            chosen += 1
    # Whatever is left ships at its natural grade.
    for capability, grade_idx in zip(remaining, remaining_natural):
        parts.append(ShippedPart(edges[grade_idx], capability))

    per_bin: dict[float, int] = {edge: 0 for edge in edges}
    down = 0
    headrooms = []
    for part in parts:
        per_bin[part.rated_mhz] += 1
        headrooms.append(part.headroom)
        natural_edge = max(e for e in edges if e <= part.capable_mhz)
        if part.rated_mhz < natural_edge:
            down += 1
    headrooms_arr = np.array(headrooms)
    return BinningOutcome(
        parts_per_bin=per_bin,
        down_binned_fraction=down / len(parts),
        mean_headroom=float(headrooms_arr.mean()),
        p90_headroom=float(np.percentile(headrooms_arr, 90.0)),
    )


def overclocking_headroom(
    distribution: SpeedDistribution, rated_mhz: float
) -> float:
    """Median over-clocking margin of parts sold at one conservative grade.

    The Section 8.1.1 observation condensed: when everything ships at a
    safe low grade, the median die carries substantial headroom.
    """
    if rated_mhz <= 0:
        raise VariationError("rated frequency must be positive")
    capable = distribution.frequencies_mhz
    qualifying = capable[capable >= rated_mhz]
    if len(qualifying) == 0:
        raise VariationError("no dies qualify at that grade")
    return float(np.median(qualifying) / rated_mhz)
