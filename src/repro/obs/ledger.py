"""Persistent run ledger: one structured record per flow/bench/sweep run.

The repo re-derives the paper's numeric chain on every run, but until
now nothing recorded runs *over time* -- a wall-time regression or a
claim drifting out of its tolerance band was invisible unless someone
eyeballed ``BENCH_paperbench.json``.  The ledger closes that loop:

* every ``flow``, ``bench``, ``sweep``, ``variation`` and paperbench
  invocation appends one schema-versioned JSON :class:`RunRecord` to a
  ledger directory (``.repro_runs/`` by default, ``REPRO_RUNS_DIR``
  overrides), written atomically so a crashed run can never leave a
  truncated record;
* records capture a config/tech *fingerprint* (so later runs of the
  same design point can be compared like-for-like), the git revision if
  one is available, per-stage wall times and cache-hit status from the
  engine's :class:`~repro.flows.results.StageRecord` list, flat metric
  snapshots, paper-claim values with their tolerance bands, aggregated
  span trees, and diagnostics;
* :mod:`repro.obs.regress` selects a baseline from the ledger (median
  of the last N matching-fingerprint runs) and flags wall-time, cache
  hit-rate and claim regressions; ``repro-gap runs
  list|show|diff|regress`` is the CLI surface.

Recording is off by default -- library callers pay a single flag check
-- and is switched on by the CLI (every ``repro-gap`` invocation unless
``--no-ledger``) and by tests.  Pool workers cannot append directly to
the parent's ledger file-ordering guarantees, so they *buffer*: the
sweep runner puts the worker ledger into buffering mode, ships the
buffered records back with the results, and the parent merges them
(see :func:`adopt`).
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Record schema version; bump on incompatible field changes.
SCHEMA_VERSION = 1

#: Default ledger directory (relative to the working directory).
DEFAULT_DIR = ".repro_runs"

#: Environment override for the ledger directory.
ENV_DIR = "REPRO_RUNS_DIR"

#: Filename prefix of ledger records (lexicographic order = run order).
_PREFIX = "run-"


class LedgerError(ValueError):
    """Raised for invalid ledger usage (unknown run ids, bad records)."""


@dataclass
class RunRecord:
    """One run's structured, JSON-ready execution record.

    Attributes:
        kind: run flavour -- ``"flow"``, ``"bench"``, ``"sweep"``,
            ``"variation"``, ``"stats"``, ``"paperbench"``.
        label: human-readable run label (``"asic.alu8"``).
        fingerprint: config/tech identity; runs sharing a fingerprint
            are comparable design points (policy knobs like fault
            injection are excluded upstream, so a chaos run still
            matches its clean baseline).
        schema: record schema version.
        run_id: sortable unique id, assigned at append time.
        created_s: Unix timestamp, assigned at append time.
        git_rev: short git revision of the working tree, if available.
        host: execution environment (python/numpy versions, platform,
            cpu count, git-dirty flag) captured at append time, so
            cross-machine comparisons can be flagged instead of
            silently mixed (see :func:`host_context`).
        tech: process technology name ("" when not applicable).
        config: the run's full option/parameter dict.
        wall_s: end-to-end wall time of the run.
        stages: per-stage execution dicts (name, status, wall_s,
            cache_hit, fingerprint) from the stage-graph engine.
        metrics: flat ``{str: scalar}`` metric snapshot (same shape as
            ``BENCH_*.json``).
        claims: paper-claim snapshot ``{claim: {value, lo, hi, ok}}``.
        spans: aggregated span-tree entries (see
            :func:`repro.obs.render.aggregate_spans`); empty when the
            run was not traced.
        diagnostics: structured findings from the run.
        worker: True when the record was produced in a pool worker and
            merged into the parent ledger.
        events_path: JSONL event-stream file the live bus was sinking
            to while this run executed ("" when the bus was off) --
            ``repro-gap top`` replays it.
        result: full result payload for runs that are *replayable* --
            ``kind="sweep.point"`` records carry the point's
            ``FlowResult.to_dict()`` so ``--resume-sweep`` can rebuild
            completed points without recomputing them.  Empty for
            record kinds that only exist for comparison.
        failures: failure/post-mortem payloads -- quarantined
            :class:`~repro.robust.retry.TaskFailure` dicts and
            escalated stall reports on sweep records -- so ``runs
            show`` supports post-mortems, not just successes.
    """

    kind: str
    label: str
    fingerprint: str
    schema: int = SCHEMA_VERSION
    run_id: str = ""
    created_s: float = 0.0
    git_rev: str | None = None
    host: dict = field(default_factory=dict)
    tech: str = ""
    config: dict = field(default_factory=dict)
    wall_s: float = 0.0
    stages: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    claims: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    diagnostics: list = field(default_factory=list)
    worker: bool = False
    events_path: str = ""
    result: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "created_s": self.created_s,
            "git_rev": self.git_rev,
            "host": self.host,
            "tech": self.tech,
            "config": self.config,
            "wall_s": self.wall_s,
            "stages": self.stages,
            "metrics": self.metrics,
            "claims": self.claims,
            "spans": self.spans,
            "diagnostics": self.diagnostics,
            "worker": self.worker,
            "events_path": self.events_path,
            "result": self.result,
            "failures": self.failures,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        if not isinstance(payload, dict):
            raise LedgerError(f"run record must be a dict, got "
                              f"{type(payload).__name__}")
        if payload.get("schema") != SCHEMA_VERSION:
            raise LedgerError(
                f"run record schema {payload.get('schema')!r} is not "
                f"{SCHEMA_VERSION}"
            )
        return cls(
            kind=str(payload.get("kind", "")),
            label=str(payload.get("label", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            schema=SCHEMA_VERSION,
            run_id=str(payload.get("run_id", "")),
            created_s=float(payload.get("created_s", 0.0)),
            git_rev=payload.get("git_rev"),
            host=dict(payload.get("host") or {}),
            tech=str(payload.get("tech", "")),
            config=dict(payload.get("config") or {}),
            wall_s=float(payload.get("wall_s", 0.0)),
            stages=list(payload.get("stages") or []),
            metrics=dict(payload.get("metrics") or {}),
            claims=dict(payload.get("claims") or {}),
            spans=list(payload.get("spans") or []),
            diagnostics=list(payload.get("diagnostics") or []),
            worker=bool(payload.get("worker", False)),
            events_path=str(payload.get("events_path", "") or ""),
            result=dict(payload.get("result") or {}),
            failures=list(payload.get("failures") or []),
        )

    def stage_summary(self) -> str:
        """Compact ``"6 stages (2 cached, 1 failed)"``-style summary."""
        if not self.stages:
            return "-"
        cached = sum(1 for s in self.stages if s.get("cache_hit"))
        failed = sum(1 for s in self.stages if s.get("status") == "failed")
        parts = []
        if cached:
            parts.append(f"{cached} cached")
        if failed:
            parts.append(f"{failed} failed")
        detail = f" ({', '.join(parts)})" if parts else ""
        return f"{len(self.stages)} stages{detail}"


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class RunLedger:
    """Append-only directory of run records.

    Args:
        directory: ledger directory; created on first append.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, run_id: str) -> str:
        return os.path.join(self.directory, f"{_PREFIX}{run_id}.json")

    def append(self, record: RunRecord) -> str:
        """Atomically write one record; returns the file path.

        Identity fields (``run_id``, ``created_s``, ``git_rev``) are
        assigned here if the record does not carry them already (a
        worker-buffered record does, so merged records keep the id they
        were born with).
        """
        finalize_identity(record)
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(record.run_id)
        _atomic_write_text(
            path,
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        return path

    def paths(self) -> list[str]:
        """Record files, oldest first (run ids sort lexicographically)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            os.path.join(self.directory, name)
            for name in sorted(names)
            if name.startswith(_PREFIX) and name.endswith(".json")
        ]

    def records(
        self,
        kind: str | None = None,
        fingerprint: str | None = None,
    ) -> list[RunRecord]:
        """Load every readable record, oldest first.

        Corrupt or foreign-schema files are skipped (the ledger is an
        observability aid; one bad file must not sink the readers).
        """
        out: list[RunRecord] = []
        for path in self.paths():
            try:
                with open(path) as handle:
                    record = RunRecord.from_dict(json.load(handle))
            except (OSError, ValueError):
                continue
            if kind is not None and record.kind != kind:
                continue
            if fingerprint is not None and record.fingerprint != fingerprint:
                continue
            out.append(record)
        return out

    def latest(self, kind: str | None = None) -> RunRecord | None:
        """Newest readable record (of a kind), or None."""
        records = self.records(kind=kind)
        return records[-1] if records else None

    def load(self, ref: str) -> RunRecord:
        """Load one record by run-id (unique prefix) or ``"last"``."""
        records = self.records()
        if not records:
            raise LedgerError(
                f"run ledger {self.directory!r} has no records"
            )
        if ref == "last":
            return records[-1]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise LedgerError(
                f"no run record matches id {ref!r} in {self.directory!r}"
            )
        if len(matches) > 1:
            ids = [r.run_id for r in matches]
            raise LedgerError(
                f"run id {ref!r} is ambiguous: {ids}"
            )
        return matches[0]


# ---------------------------------------------------------------------------
# Module-level switch, buffering, and identity helpers.

_enabled = False
_explicit_dir: str | None = None
_buffer: list[dict] | None = None
_seq = 0
_git_rev: tuple[str | None] | None = None  # 1-tuple cache; None = unprobed
_host: tuple[dict] | None = None  # 1-tuple cache; None = unprobed


def runs_dir() -> str:
    """Active ledger directory: explicit > ``REPRO_RUNS_DIR`` > default."""
    if _explicit_dir is not None:
        return _explicit_dir
    return os.environ.get(ENV_DIR) or DEFAULT_DIR


def configure(directory: str | None) -> None:
    """Set (or with None, clear) the explicit ledger directory."""
    global _explicit_dir
    _explicit_dir = directory


def set_enabled(flag: bool) -> None:
    """Turn run recording on or off (either way leaves buffering mode)."""
    global _enabled, _buffer
    _enabled = bool(flag)
    _buffer = None


def enabled() -> bool:
    """Whether :func:`record` persists anything."""
    return _enabled


def get_ledger() -> RunLedger:
    """A ledger over the active directory."""
    return RunLedger(runs_dir())


def enable_buffering() -> None:
    """Record into an in-process buffer instead of the directory.

    Pool workers use this: the parent ships the drained buffer back and
    merges it with :func:`adopt`, so worker runs land in one ledger.
    """
    global _enabled, _buffer
    _enabled = True
    _buffer = []


def drain_buffer() -> list[dict]:
    """Return and clear the buffered record dicts (empty when direct)."""
    global _buffer
    drained = list(_buffer or [])
    if _buffer is not None:
        _buffer = []
    return drained


def git_revision() -> str | None:
    """Short git revision of the working tree, cached per process."""
    global _git_rev
    if _git_rev is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5.0,
            )
            rev = proc.stdout.strip() if proc.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            rev = None
        _git_rev = (rev or None,)
    return _git_rev[0]


def _git_dirty() -> bool | None:
    """Whether the working tree has uncommitted changes (None: unknown)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def host_context() -> dict:
    """Execution-environment fingerprint, cached per process.

    Wall-time baselines from one machine are meaningless on another;
    every record carries this so :func:`repro.obs.regress.compare` can
    warn on cross-host comparisons instead of silently mixing them.
    """
    global _host
    if _host is None:
        import platform
        import sys as _sys

        try:
            import numpy
            numpy_version = numpy.__version__
        except ImportError:  # pragma: no cover - numpy is a hard dep
            numpy_version = None
        _host = ({
            "python": platform.python_version(),
            "numpy": numpy_version,
            "platform": _sys.platform,
            "machine": platform.machine(),
            "node": platform.node(),
            "cpu_count": os.cpu_count(),
            "git_dirty": _git_dirty(),
        },)
    return dict(_host[0])


def finalize_identity(record: RunRecord) -> RunRecord:
    """Assign run_id / created_s / git_rev / host if the record lacks them."""
    global _seq
    if not record.run_id:
        _seq += 1
        record.run_id = (
            f"{time.time_ns():016x}-{os.getpid():05x}-{_seq:04d}"
        )
    if not record.created_s:
        record.created_s = time.time()
    if record.git_rev is None:
        record.git_rev = git_revision()
    if not record.host:
        record.host = host_context()
    return record


def record(rec: RunRecord) -> str | None:
    """Append a record if recording is on; returns the path (or None).

    In buffering mode the record is held in memory (identity already
    assigned, so merged records keep their worker-side ids); a write
    failure is reported on stderr but never takes the run down.
    """
    if not _enabled:
        return None
    finalize_identity(rec)
    if not rec.events_path:
        # Finalizer hook: runs executed under an active live-bus JSONL
        # sink record where their event stream landed, so `runs show`
        # can point `repro-gap top` at it.
        from repro.obs import live as _live

        rec.events_path = _live.sink_path() or ""
    if _buffer is not None:
        _buffer.append(rec.to_dict())
        return None
    try:
        return get_ledger().append(rec)
    except OSError as exc:
        import sys

        print(f"repro-gap: cannot write run record: {exc}",
              file=sys.stderr)
        return None


def adopt(buffered: Iterable[dict]) -> int:
    """Merge worker-buffered record dicts into the active ledger.

    Returns the number of records written.  Each record is marked
    ``worker=True``; malformed entries are skipped.
    """
    if not _enabled:
        return 0
    written = 0
    for payload in buffered:
        try:
            rec = RunRecord.from_dict(payload)
        except LedgerError:
            continue
        rec.worker = True
        if record(rec) is not None:
            written += 1
    return written


def reset_state() -> None:
    """Test hook: drop the switch, buffer, and explicit directory."""
    global _enabled, _explicit_dir, _buffer
    _enabled = False
    _explicit_dir = None
    _buffer = None


# ---------------------------------------------------------------------------
# Record builders.

def flow_record(ctx: Any, tech: Any, wall_s: float,
                root_span: Any = None) -> RunRecord:
    """Build a ``kind="flow"`` record from a completed flow context.

    Args:
        ctx: the engine's :class:`~repro.flows.engine.FlowContext`.
        tech: the run's process technology.
        wall_s: end-to-end flow wall time.
        root_span: the flow-level :class:`~repro.obs.trace.Span` when
            observability was on (its descendants become the record's
            aggregated span tree).
    """
    import dataclasses

    from repro.flows.options import digest, options_fingerprint
    from repro.obs import instrument
    from repro.obs.render import aggregate_spans

    options = ctx.options
    stages = [rec.to_dict() for rec in ctx.stage_records]
    metrics: dict = {f"note.{k}": v for k, v in sorted(ctx.notes.items())}
    if stages:
        hits = sum(1 for s in stages if s.get("cache_hit"))
        metrics["stage.count"] = len(stages)
        metrics["cache.stage.hits"] = hits
        metrics["cache.stage.hit_rate"] = round(hits / len(stages), 4)
    spans: list = []
    if root_span is not None and getattr(root_span, "index", None) is not None:
        spans = aggregate_spans(
            instrument.get_tracer().finished(), root_index=root_span.index
        )
    return RunRecord(
        kind="flow",
        label=f"{ctx.flow}.{options.workload}{options.bits}",
        fingerprint=digest({
            "kind": "flow",
            "flow": ctx.flow,
            "options": options_fingerprint(options),
            "tech": tech.name,
        }),
        tech=tech.name,
        config=dataclasses.asdict(options),
        wall_s=round(wall_s, 6),
        stages=stages,
        metrics=metrics,
        diagnostics=[d.to_dict() for d in ctx.diagnostics],
        spans=spans,
    )
