"""E4 -- Section 4: pipelining speedups (3.8x Xtensa, 3.4x PowerPC).

Three measurements: the paper's own N*(1-v) arithmetic, the FO4-budget
model, and a *netlist-level* pipelining sweep through the real pipeliner
and STA engine.  Includes the overhead-fraction ablation (10-40%) called
out in DESIGN.md.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import ripple_carry_adder
from repro.pipeline import (
    ideal_pipeline_speedup,
    pipeline_module,
    pipeline_speedup_fo4,
)
from repro.sta import asic_clock, solve_min_period
from repro.tech import CMOS250_ASIC

BITS = 12


def _netlist_sweep():
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(50.0 * CMOS250_ASIC.fo4_delay_ps)
    periods = {}
    for stages in (1, 2, 4, 5, 8):
        piped = pipeline_module(
            ripple_carry_adder(BITS, library), library, stages
        )
        timing = solve_min_period(piped.module, library, clock)
        periods[stages] = timing.min_period_ps
    return periods


def test_e4_pipelining(benchmark):
    periods = run_once(benchmark, _netlist_sweep)
    measured_5 = periods[1] / periods[5]
    measured_8 = periods[1] / periods[8]

    rows = [
        row("paper arithmetic: 5 stages @ 24% ovh", "~3.8x",
            ideal_pipeline_speedup(5, 0.24), 3.7, 3.9),
        row("paper arithmetic: 4 stages @ 15% ovh", "~3.4x",
            ideal_pipeline_speedup(4, 0.15), 3.3, 3.5),
        row("FO4 budget: Xtensa class (5 st)", "~3.8x",
            pipeline_speedup_fo4(154.0, 5, 13.2), 3.6, 4.0),
        row("FO4 budget: PowerPC class (4 st)", "~3.4x",
            pipeline_speedup_fo4(41.6, 4, 2.6), 3.2, 3.6),
        row("netlist: 12b adder, 5 stages", "3-4x class",
            measured_5, 2.2, 4.6),
        row("netlist: diminishing returns at 8", "< linear",
            measured_8 / 8.0, 0.2, 0.9, fmt="{:.2f} of linear"),
    ]

    # Ablation: overhead fraction sweep around the paper's 20/30%.
    print()
    print("ablation: ideal 5-stage speedup vs overhead fraction")
    for overhead in (0.10, 0.20, 0.30, 0.40):
        print(f"  v = {overhead:.2f}: {ideal_pipeline_speedup(5, overhead):.2f}x")

    report("E4  Pipelining speedups (Section 4)", rows)
    for entry in rows:
        assert entry.ok, entry
    assert periods[5] < periods[4] < periods[2] < periods[1]
