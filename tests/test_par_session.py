"""Incremental STA session tests: equivalence with full analysis.

The load-bearing property: after *any* sequence of sizing moves, a
:class:`TimingSession`'s cached arrivals/slews/traces and its minimum
period are exactly what a from-scratch ``analyze()`` of the mutated
netlist produces.  The randomized tests drive seeded move sequences
through ``check=True`` sessions (which re-verify after every commit);
the fault tests confirm the PR 2 finite-arrival guard still fires when
NaN enters through the incremental propagation path.
"""

import math
import random

import pytest

from repro.cells import rich_asic_library
from repro.cells.delay import LinearDelayArc
from repro.datapath import kogge_stone_adder, ripple_carry_adder
from repro.netlist.nets import is_port_ref
from repro.par import TimingSession
from repro.par.session import SessionCheckError
from repro.robust.faults import FaultInjector
from repro.sta import TimingError, analyze, asic_clock, register_boundaries
from repro.synth import map_design, parse_expression
from repro.tech import CMOS250_ASIC

CLK = asic_clock(20000.0)


def fresh_library():
    """A private library instance -- these tests mutate cells in place."""
    return rich_asic_library(CMOS250_ASIC)


def mapped(text, library, drive=1.0):
    return map_design({"y": parse_expression(text)}, library,
                      default_drive=drive)


def resizable_moves(module, library):
    """All legal (instance, variant_cell_name) swaps in a module."""
    moves = []
    for inst in module.iter_instances():
        cell = library.get(inst.cell_name)
        if cell.is_sequential:
            continue
        for variant in library.drives_of(cell.base_name):
            if variant.name != inst.cell_name:
                moves.append((inst.name, variant.name))
    return moves


def mover_victim_pair(module, library):
    """An (instance-to-resize, downstream-instance, its-input-pin) triple.

    Resizing the mover changes its output arrival, so the victim sits in
    the re-propagated cone and its input arc is guaranteed to be
    re-evaluated incrementally.
    """
    for inst in module.iter_instances():
        if library.get(inst.cell_name).is_sequential:
            continue
        for pin, net in inst.inputs.items():
            driver = module.driver_of(net)
            if driver is None or is_port_ref(driver):
                continue
            mover = driver[0]
            mover_cell = library.get(module.instance(mover).cell_name)
            if mover_cell.is_sequential:
                continue
            stronger = [
                c for c in library.drives_of(mover_cell.base_name)
                if c.name != mover_cell.name
            ]
            if stronger:
                return mover, stronger[-1].name, inst.name, pin
    raise AssertionError("test design has no mover/victim pair")


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_move_sequence_matches_full(self, seed):
        """Seeded random commits; check=True re-verifies every state."""
        library = fresh_library()
        module = mapped("(a & b & c & d) | (e & f & g & h)", library)
        session = TimingSession(module, library, CLK, check=True)
        rng = random.Random(seed)
        for _ in range(12):
            moves = resizable_moves(module, library)
            instance, cell_name = rng.choice(moves)
            report = session.commit(instance, cell_name)
            full = analyze(module, library, CLK)
            assert report.min_period_ps == full.min_period_ps
            assert session.min_period_ps() == full.min_period_ps

    @pytest.mark.parametrize("generator,bits", [
        (ripple_carry_adder, 4),
        (kogge_stone_adder, 4),
    ])
    def test_datapath_designs_match_full(self, generator, bits):
        library = fresh_library()
        module = generator(bits, library)
        session = TimingSession(module, library, CLK, check=True)
        rng = random.Random(99)
        for _ in range(6):
            instance, cell_name = rng.choice(
                resizable_moves(module, library)
            )
            session.commit(instance, cell_name)
        assert session.min_period_ps() == analyze(
            module, library, CLK
        ).min_period_ps

    def test_registered_design_matches_full(self):
        library = fresh_library()
        comb = mapped("(a & b) | (c & d)", library)
        module = register_boundaries(comb, library)
        session = TimingSession(module, library, CLK, check=True)
        for instance, cell_name in resizable_moves(module, library)[:4]:
            session.commit(instance, cell_name)
        assert session.min_period_ps() == analyze(
            module, library, CLK
        ).min_period_ps

    def test_check_mode_detects_divergence(self):
        library = fresh_library()
        module = mapped("a & b & c", library)
        session = TimingSession(module, library, CLK, check=True)
        net = next(iter(session._arrival))
        session._arrival[net] += 1.0
        with pytest.raises(SessionCheckError):
            session._verify_against_full()


class TestTrials:
    def test_trial_restores_state(self):
        library = fresh_library()
        module = mapped("(a & b) | (c & d)", library)
        session = TimingSession(module, library, CLK)
        before = session.min_period_ps()
        cells_before = {
            inst.name: inst.cell_name for inst in module.iter_instances()
        }
        arrivals_before = dict(session._arrival)
        changing = [
            (inst, cell) for inst, cell in resizable_moves(module, library)
            if session.trial(inst, cell) != before
        ]
        assert changing  # at least one move affects the critical path
        instance, cell_name = changing[0]
        assert session.trial(instance, cell_name) != before
        assert session.min_period_ps() == before
        assert arrivals_before == session._arrival
        assert cells_before == {
            inst.name: inst.cell_name for inst in module.iter_instances()
        }

    def test_trial_matches_commit(self):
        library = fresh_library()
        module = mapped("(a & b) | (c & d)", library)
        session = TimingSession(module, library, CLK, check=True)
        instance, cell_name = resizable_moves(module, library)[0]
        trial_period = session.trial(instance, cell_name)
        report = session.commit(instance, cell_name)
        assert report.min_period_ps == trial_period

    def test_noop_commit_keeps_state(self):
        library = fresh_library()
        module = mapped("a & b", library)
        session = TimingSession(module, library, CLK, check=True)
        inst = next(module.iter_instances())
        report = session.commit(inst.name, inst.cell_name)
        assert report.min_period_ps == session.min_period_ps()

    def test_sequential_resize_rejected(self):
        library = fresh_library()
        comb = mapped("a & b", library)
        module = register_boundaries(comb, library)
        dff = next(
            inst.name for inst in module.iter_instances()
            if library.get(inst.cell_name).is_sequential
        )
        session = TimingSession(module, library, CLK)
        comb = next(c.name for c in library if not c.is_sequential)
        with pytest.raises(TimingError, match="sequential"):
            session.trial(dff, comb)

    def test_bad_derate_rejected(self):
        library = fresh_library()
        module = mapped("a & b", library)
        with pytest.raises(TimingError, match="derate"):
            TimingSession(module, library, CLK, delay_derate=math.inf)


class TestFiniteGuard:
    def test_injected_nan_fails_session_construction(self):
        """FaultInjector NaN poisoning trips the guard during the
        session's own (incremental-machinery) full propagation."""
        library = fresh_library()
        module = mapped("(a & b & c) | (d & e)", library)
        FaultInjector(seed=3).inject_nan(library, module)
        with pytest.raises(TimingError, match="[Nn]on-finite"):
            TimingSession(module, library, CLK)

    def test_nan_arc_fires_guard_through_incremental_path(self):
        """Poison an arc *after* construction: the next move whose cone
        re-evaluates it must raise, and the session must roll back."""
        library = fresh_library()
        module = mapped("(a & b & c) | (d & e)", library)
        session = TimingSession(module, library, CLK)
        before = session.min_period_ps()
        mover, stronger, victim, pin = mover_victim_pair(module, library)
        victim_cell = library.get(module.instance(victim).cell_name)
        saved_arc = victim_cell.arcs[pin]
        victim_cell.arcs[pin] = LinearDelayArc(
            parasitic_ps=float("nan"), effort_ps_per_ff=1.0
        )
        try:
            with pytest.raises(TimingError, match="[Nn]on-finite"):
                session.trial(mover, stronger)
        finally:
            victim_cell.arcs[pin] = saved_arc
        # The failed trial must have restored the pre-trial state.
        assert session.min_period_ps() == before
        assert session.min_period_ps() == analyze(
            module, library, CLK
        ).min_period_ps
