"""Unit tests for the solver convergence and finiteness guards."""

import math

import pytest

from repro import obs
from repro.cells import rich_asic_library
from repro.cells.delay import LinearDelayArc
from repro.datapath import ripple_carry_adder
from repro.robust import (
    GuardError,
    NonFiniteError,
    disable_guard,
    enable_all_guards,
    ensure_finite,
    guard_enabled,
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.sizing import SizingError
from repro.sta import ConvergenceError, TimingError, asic_clock
from repro.sta import register_boundaries, solve_min_period
from repro.tech import CMOS250_ASIC

CLK = asic_clock(20.0 * CMOS250_ASIC.fo4_delay_ps)


@pytest.fixture(autouse=True)
def _restore_guards():
    yield
    enable_all_guards()


def adder(bits=4):
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(ripple_carry_adder(bits, library), library)
    return module, library


class TestGuardRegistry:
    def test_guards_default_enabled(self):
        for name in ("finite", "retry", "bisection"):
            assert guard_enabled(name)

    def test_disable_and_restore(self):
        disable_guard("finite")
        assert not guard_enabled("finite")
        enable_all_guards()
        assert guard_enabled("finite")

    def test_unknown_guard_rejected(self):
        with pytest.raises(GuardError, match="unknown guard"):
            disable_guard("telepathy")


class TestEnsureFinite:
    def test_accepts_finite(self):
        ensure_finite("ctx", a=1.0, b=-2.5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(NonFiniteError, match="ctx"):
            ensure_finite("ctx", value=bad)

    def test_disabled_guard_passes_nan(self):
        disable_guard("finite")
        ensure_finite("ctx", value=float("nan"))  # must not raise


class TestGuardedSolve:
    def test_matches_plain_solver_on_healthy_input(self):
        module, library = adder()
        plain = solve_min_period(module, library, CLK)
        guarded = guarded_solve_min_period(module, library, CLK)
        assert guarded.min_period_ps == pytest.approx(plain.min_period_ps)

    def test_bisection_fallback_recovers_period(self):
        module, library = adder()
        reference = solve_min_period(module, library, CLK)
        # max_iterations=0 makes the fixed-point solver stall
        # immediately, forcing the escalation ladder to the bisection.
        report = guarded_solve_min_period(
            module, library, CLK, max_iterations=0, max_retries=1,
        )
        assert report.min_period_ps == pytest.approx(
            reference.min_period_ps, rel=0.01
        )

    def test_retry_relaxes_tolerance(self):
        module, library = adder()
        obs.enable()
        try:
            report = guarded_solve_min_period(
                module, library, CLK, max_iterations=1,
                tolerance_ps=1e-9, max_retries=6,
            )
            retries = obs.get_metrics().counter(
                "robust.guard.retries"
            ).value()
        finally:
            obs.disable()
        assert math.isfinite(report.min_period_ps)
        assert retries >= 1

    def test_bisection_disabled_propagates_convergence_error(self):
        module, library = adder()
        disable_guard("bisection")
        with pytest.raises(ConvergenceError):
            guarded_solve_min_period(
                module, library, CLK, max_iterations=0, max_retries=0,
            )

    def test_nan_library_raises_typed_error(self):
        module, library = adder()
        cell_name = next(iter(
            inst.cell_name for inst in module.iter_instances()
            if not library.get(inst.cell_name).is_sequential
        ))
        cell = library.get(cell_name)
        pin = sorted(cell.arcs)[0]
        cell.arcs[pin] = LinearDelayArc(parasitic_ps=float("nan"),
                                        effort_ps_per_ff=1.0)
        with pytest.raises((TimingError, NonFiniteError)):
            guarded_solve_min_period(module, library, CLK)

    def test_invalid_retry_policy_rejected(self):
        module, library = adder()
        with pytest.raises(GuardError, match="retry policy"):
            guarded_solve_min_period(module, library, CLK,
                                     max_retries=-1)


class TestGuardedSizing:
    def test_sizes_in_place_like_plain_sizing(self):
        module, library = adder()
        result = guarded_size_for_speed(module, library, CLK,
                                        max_moves=5)
        assert result.moves >= 0
        if result.moves:
            # Accepted swaps must be visible on the caller's module.
            assert any(
                "_X" in inst.cell_name
                for inst in module.iter_instances()
            )

    def test_failed_sizing_leaves_module_untouched(self):
        module, library = adder()
        before = {
            inst.name: inst.cell_name
            for inst in module.iter_instances()
        }
        with pytest.raises(SizingError):
            guarded_size_for_speed(module, library, CLK, max_moves=-1)
        after = {
            inst.name: inst.cell_name
            for inst in module.iter_instances()
        }
        assert after == before
