"""Netlist statistics and reporting.

Summaries the examples and the CLI print: gate histograms by function
and drive, area breakdowns, fanout distribution, and depth profiles --
the quick health-check view of a mapped design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.graph import levelize, logic_depth, max_fanout
from repro.netlist.module import Module


@dataclass(frozen=True)
class NetlistStats:
    """Aggregate statistics of one netlist.

    Attributes:
        name: module name.
        instances: total instance count.
        nets: total net count.
        sequential: register/latch count.
        depth: combinational logic depth (unit delay).
        max_fanout: largest sink count on any net.
        by_base: instance count per cell function.
        by_drive: instance count per drive strength.
        area_um2: total cell area (0.0 when no library was supplied).
        area_by_base: area per cell function.
    """

    name: str
    instances: int
    nets: int
    sequential: int
    depth: int
    max_fanout: int
    by_base: dict[str, int]
    by_drive: dict[float, int]
    area_um2: float = 0.0
    area_by_base: dict[str, float] = field(default_factory=dict)


def collect_stats(module: Module, library=None) -> NetlistStats:
    """Gather statistics; pass a library for area and accurate kinds.

    Args:
        module: the netlist.
        library: optional :class:`~repro.cells.library.CellLibrary`;
            without it, base/drive are parsed from cell names and area
            is unavailable.
    """
    by_base: dict[str, int] = {}
    by_drive: dict[float, int] = {}
    area_by_base: dict[str, float] = {}
    area = 0.0
    sequential = 0
    seq_names = (
        library.sequential_cell_names() if library is not None else set()
    )
    for inst in module.iter_instances():
        if library is not None:
            cell = library.get(inst.cell_name)
            base = cell.base_name
            drive = cell.drive
            area += cell.area_um2
            area_by_base[base] = area_by_base.get(base, 0.0) + cell.area_um2
            if cell.is_sequential:
                sequential += 1
        else:
            parts = inst.cell_name.rsplit("_", 1)
            base = parts[0]
            drive = _parse_drive(parts[1]) if len(parts) > 1 else 1.0
        by_base[base] = by_base.get(base, 0) + 1
        by_drive[drive] = by_drive.get(drive, 0) + 1
    return NetlistStats(
        name=module.name,
        instances=module.instance_count(),
        nets=module.net_count(),
        sequential=sequential,
        depth=logic_depth(module, seq_names),
        max_fanout=max_fanout(module),
        by_base=by_base,
        by_drive=by_drive,
        area_um2=area,
        area_by_base=area_by_base,
    )


def _parse_drive(suffix: str) -> float:
    if not suffix.startswith("X"):
        return 1.0
    try:
        return float(suffix[1:].replace("p", "."))
    except ValueError:
        return 1.0


def format_stats(stats: NetlistStats, top: int = 10) -> str:
    """Render statistics as a text block."""
    lines = [
        f"module {stats.name}: {stats.instances} instances "
        f"({stats.sequential} sequential), {stats.nets} nets, "
        f"depth {stats.depth}, max fanout {stats.max_fanout}",
    ]
    if stats.area_um2 > 0:
        lines.append(f"total cell area {stats.area_um2:.1f} um2")
    ranked = sorted(
        stats.by_base.items(), key=lambda kv: kv[1], reverse=True
    )
    for base, count in ranked[:top]:
        area_note = ""
        if stats.area_by_base.get(base):
            share = stats.area_by_base[base] / stats.area_um2
            area_note = f"  ({100 * share:.0f}% of area)"
        lines.append(f"  {base:<10s} x{count}{area_note}")
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more functions")
    drives = sorted(stats.by_drive.items())
    drive_text = ", ".join(f"X{d:g}: {c}" for d, c in drives[:12])
    lines.append(f"drives: {drive_text}")
    return "\n".join(lines)


def depth_histogram(module: Module, sequential_cells=()) -> dict[int, int]:
    """Instance count per combinational level."""
    histogram: dict[int, int] = {}
    for level in levelize(module, sequential_cells).values():
        histogram[level] = histogram.get(level, 0) + 1
    return histogram
