"""Gap analysis: decomposing a *measured* ASIC-custom frequency ratio.

This closes the loop the paper leaves open: instead of asserting factor
sizes, we run both flows (:mod:`repro.flows`) on the same workload and
decompose the measured quoted-frequency ratio *exactly* into

    ratio = cycle-depth factor        (FO4 per cycle: pipelining, logic
                                       design, sizing, wires, skew)
          x technology-access factor  (FO4 delay of the process actually
                                       reachable: Leff, Section 8.3)
          x silicon-quoting factor    (flagship bin vs worst-case quote:
                                       Section 8's variation/accessibility)

since ``f = 1 / (fo4_depth * fo4_delay) * quote_factor``.  The cycle-depth
factor is further attributed additively in FO4 between logic and
sequencing overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.factors import FactorModel, measured_model
from repro.flows.results import FlowResult
from repro.tech.scaling import generations_equivalent


class GapError(ValueError):
    """Raised for inconsistent gap-analysis inputs."""


@dataclass(frozen=True)
class GapReport:
    """Measured decomposition of one ASIC-vs-custom comparison.

    Attributes:
        asic: the ASIC flow result.
        custom: the custom flow result.
        total_ratio: custom quoted frequency over ASIC quoted frequency.
        cycle_depth_factor: ASIC FO4 depth over custom FO4 depth.
        technology_factor: ASIC FO4 delay over custom FO4 delay.
        quoting_factor: custom quote factor over ASIC quote factor.
        logic_depth_ratio: ASIC logic FO4 over custom logic FO4.
        overhead_depth_ratio: ASIC overhead FO4 over custom overhead FO4.
    """

    asic: FlowResult
    custom: FlowResult
    total_ratio: float
    cycle_depth_factor: float
    technology_factor: float
    quoting_factor: float
    logic_depth_ratio: float
    overhead_depth_ratio: float

    def factor_product(self) -> float:
        """Product of the three exact factors (== total_ratio)."""
        return (
            self.cycle_depth_factor
            * self.technology_factor
            * self.quoting_factor
        )

    def gap_in_generations(self) -> float:
        """Measured gap in process generations (Section 2 conversion)."""
        return generations_equivalent(self.total_ratio)

    def as_factor_model(self) -> FactorModel:
        """Measured factors as a :class:`FactorModel` for comparison."""
        return measured_model(
            {
                "microarchitecture": max(1.0, self.cycle_depth_factor),
                "process_variation": max(
                    1.0, self.technology_factor * self.quoting_factor
                ),
            }
        )

    def table(self) -> str:
        """Text table of the decomposition."""
        rows = [
            ("total quoted-frequency ratio", self.total_ratio),
            ("  cycle depth (FO4/cycle)", self.cycle_depth_factor),
            ("    of which logic depth", self.logic_depth_ratio),
            ("    of which sequencing overhead", self.overhead_depth_ratio),
            ("  technology access (FO4 delay)", self.technology_factor),
            ("  silicon quoting (bins vs WC)", self.quoting_factor),
        ]
        lines = [f"{'component':<36s} {'factor':>8s}"]
        for label, value in rows:
            lines.append(f"{label:<36s} {value:>7.2f}x")
        lines.append(
            f"{'equivalent process generations':<36s} "
            f"{self.gap_in_generations():>7.1f}"
        )
        return "\n".join(lines)


def analyze_gap(asic: FlowResult, custom: FlowResult) -> GapReport:
    """Decompose the measured gap between two flow results.

    Raises:
        GapError: if results are degenerate (zero frequencies).
    """
    if asic.quoted_frequency_mhz <= 0 or custom.quoted_frequency_mhz <= 0:
        raise GapError("flow results must have positive frequencies")
    total = custom.quoted_frequency_mhz / asic.quoted_frequency_mhz
    depth = asic.fo4_depth / custom.fo4_depth
    tech = asic.technology.fo4_delay_ps / custom.technology.fo4_delay_ps
    quoting = custom.quote_factor / asic.quote_factor
    asic_ovh = asic.fo4_depth - asic.logic_fo4
    custom_ovh = custom.fo4_depth - custom.logic_fo4
    return GapReport(
        asic=asic,
        custom=custom,
        total_ratio=total,
        cycle_depth_factor=depth,
        technology_factor=tech,
        quoting_factor=quoting,
        logic_depth_ratio=(
            asic.logic_fo4 / custom.logic_fo4 if custom.logic_fo4 > 0 else 1.0
        ),
        overhead_depth_ratio=(
            asic_ovh / custom_ovh if custom_ovh > 0 else 1.0
        ),
    )
