"""Tests for the extension modules: skew-tolerant domino and delay-balanced
pipelining (the paper's Sections 7/4.1 'what can we do' directions)."""

import pytest

from repro.cells import rich_asic_library
from repro.circuit import FamilyError
from repro.circuit.skewtolerant import (
    SkewTolerantClocking,
    conventional_cycle_fo4,
    skew_tolerance_speedup,
)
from repro.datapath import alu, ripple_carry_adder, simulate_adder
from repro.pipeline import PipelineError, pipeline_module
from repro.pipeline.balance import (
    balanced_stage_assignment,
    estimate_gate_delays,
    pipeline_module_balanced,
)
from repro.sta import asic_clock, solve_min_period
from repro.synth import simulate_sequential
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(20000.0)


class TestSkewTolerantDomino:
    def test_absorbs_skew_and_latch(self):
        # 10 FO4 logic, 3 FO4 flop, 10% skew: conventional = 14.4 FO4;
        # skew-tolerant domino ~ 10.1 FO4.
        conventional = conventional_cycle_fo4(10.0, 0.10, 3.0)
        plan = SkewTolerantClocking()
        tolerant = plan.cycle_fo4(10.0, 0.10)
        assert conventional == pytest.approx(14.44, abs=0.05)
        assert tolerant < 10.5
        assert tolerant >= 10.0

    def test_speedup_magnitude(self):
        # Removing ~30% overhead buys ~1.4x -- part of how custom domino
        # pipelines reached 13-15 FO4.
        speedup = skew_tolerance_speedup(10.0)
        assert 1.25 < speedup < 1.55

    def test_partial_absorption(self):
        # With huge skew only part is absorbed.
        plan = SkewTolerantClocking(phases=4, overlap_fraction=0.4,
                                    hold_guard_fraction=0.1)
        budget = plan.skew_budget_fraction()
        cycle = plan.cycle_fo4(10.0, skew_fraction=budget + 0.05)
        assert cycle == pytest.approx(10.0 / (1.0 - 0.05), rel=1e-6)

    def test_more_phases_less_budget_each(self):
        few = SkewTolerantClocking(phases=2)
        many = SkewTolerantClocking(phases=8)
        assert few.skew_budget_fraction() > many.skew_budget_fraction()

    def test_validation(self):
        with pytest.raises(FamilyError):
            SkewTolerantClocking(phases=1)
        with pytest.raises(FamilyError):
            SkewTolerantClocking(overlap_fraction=0.0)
        with pytest.raises(FamilyError):
            SkewTolerantClocking(hold_guard_fraction=0.9)
        with pytest.raises(FamilyError):
            conventional_cycle_fo4(-1.0, 0.1, 3.0)
        plan = SkewTolerantClocking()
        with pytest.raises(FamilyError):
            plan.cycle_fo4(10.0, skew_fraction=1.0)


class TestBalancedPipelining:
    def test_gate_delay_estimates_positive(self):
        module = ripple_carry_adder(8, RICH)
        delays = estimate_gate_delays(module, RICH)
        assert set(delays) == set(module.instances)
        assert all(d > 0 for d in delays.values())

    def test_assignment_monotone_along_edges(self):
        module = ripple_carry_adder(8, RICH)
        report = balanced_stage_assignment(module, RICH, 4)
        from repro.netlist import instance_graph

        graph = instance_graph(module)
        for u, v in graph.edges:
            assert report.stage_of[v] >= report.stage_of[u]
        assert report.stages == 4
        assert len(report.stage_delays_ps) == 4

    def test_balanced_beats_unit_level_on_uneven_logic(self):
        # The ALU has uneven per-level delay (XOR-heavy adder vs cheap
        # mux levels): delay balancing should not be worse than unit
        # bucketing, and usually wins.
        comb_a = alu(8, RICH, fast_adder=False)
        comb_b = alu(8, RICH, fast_adder=False)
        unit = pipeline_module(comb_a, RICH, stages=4)
        balanced = pipeline_module_balanced(comb_b, RICH, stages=4)
        p_unit = solve_min_period(unit.module, RICH, CLK).min_period_ps
        p_bal = solve_min_period(balanced.module, RICH, CLK).min_period_ps
        assert p_bal <= p_unit * 1.05  # never meaningfully worse
        assert balanced.stages == 4

    def test_balanced_pipeline_functionally_correct(self):
        bits = 4
        adder = ripple_carry_adder(bits, RICH)
        report = pipeline_module_balanced(adder, RICH, stages=3)
        piped = report.module
        cases = [(5, 9, 0), (15, 15, 1), (0, 7, 1)]
        stream = []
        for a, b, cin in cases:
            vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
            vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
            vec["cin"] = bool(cin)
            stream.append(vec)
        idle = {k: False for k in stream[0]}
        stream += [idle] * report.latency_cycles
        trace = simulate_sequential(piped, RICH, stream)
        for idx, (a, b, cin) in enumerate(cases):
            out = trace[idx + report.latency_cycles]
            total = sum(1 << i for i in range(bits) if out[f"s{i}"])
            expected = a + b + cin
            assert total == expected % (1 << bits)
            assert out["cout"] == bool(expected >> bits)

    def test_imbalance_metric(self):
        module = ripple_carry_adder(8, RICH)
        report = balanced_stage_assignment(module, RICH, 4)
        assert report.imbalance >= 1.0
        assert report.imbalance < 3.0

    def test_validation(self):
        module = ripple_carry_adder(4, RICH)
        with pytest.raises(PipelineError):
            balanced_stage_assignment(module, RICH, 0)
        with pytest.raises(PipelineError):
            pipeline_module_balanced(module, RICH, 0)
