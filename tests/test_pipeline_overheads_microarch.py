"""Unit tests for pipeline overhead arithmetic and the CPI model."""

import pytest

from repro.pipeline import (
    ALPHA_21264A,
    IBM_POWERPC_1GHZ,
    MicroArchitecture,
    PipelineBudget,
    PipelineError,
    TENSILICA_XTENSA,
    TYPICAL_WORKLOAD,
    UNPIPELINED_ASIC,
    Workload,
    best_pipeline_depth,
    ideal_pipeline_speedup,
    max_useful_stages,
    pipeline_speedup_fo4,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM


class TestOverheadArithmetic:
    def test_paper_tensilica_point(self):
        # Section 4: 5 stages at ~30% overhead -> "about 3.8 times faster".
        speedup = ideal_pipeline_speedup(5, 0.30)
        assert speedup == pytest.approx(3.5)
        # The paper's 3.8 corresponds to a ~24% effective overhead.
        assert ideal_pipeline_speedup(5, 0.24) == pytest.approx(3.8)

    def test_paper_powerpc_point(self):
        # 4 stages at ~20% -> "about 3.4 times faster".
        assert ideal_pipeline_speedup(4, 0.20) == pytest.approx(3.2)
        assert ideal_pipeline_speedup(4, 0.15) == pytest.approx(3.4)

    def test_fo4_budget_form(self):
        # Xtensa-class: 55 FO4 of logic.  5 stages with 4 FO4 overhead:
        # (55+4)/(11+4) = 3.93x -- the paper's "about 3.8" ballpark.
        speedup = pipeline_speedup_fo4(55.0, 5, 4.0)
        assert 3.5 < speedup < 4.2

    def test_saturation(self):
        # Speedup saturates at 1 + logic/overhead as stages -> inf.
        limit = 1 + 55.0 / 4.0
        deep = pipeline_speedup_fo4(55.0, 1000, 4.0)
        assert deep < limit
        assert deep > 0.9 * limit

    def test_budget_dataclass(self):
        budget = PipelineBudget(60.0, 5, 3.0)
        assert budget.cycle_fo4 == pytest.approx(15.0)
        assert budget.overhead_fraction == pytest.approx(0.2)
        assert budget.speedup == pytest.approx(63.0 / 15.0)

    def test_max_useful_stages(self):
        shallow = max_useful_stages(55.0, 4.0, max_overhead_fraction=0.3)
        deep = max_useful_stages(55.0, 2.0, max_overhead_fraction=0.3)
        assert deep > shallow >= 1

    def test_validation(self):
        with pytest.raises(PipelineError):
            ideal_pipeline_speedup(0, 0.3)
        with pytest.raises(PipelineError):
            ideal_pipeline_speedup(5, 1.0)
        with pytest.raises(PipelineError):
            pipeline_speedup_fo4(-1.0, 5, 3.0)
        with pytest.raises(PipelineError):
            max_useful_stages(55.0, 0.0)


class TestMicroArchitecture:
    def test_reference_frequencies(self):
        # The reference organisations should land near the real chips:
        # Alpha ~750 MHz and PowerPC ~1 GHz in custom 0.25 um, Xtensa
        # ~250 MHz in ASIC 0.25 um.
        alpha = ALPHA_21264A.frequency_mhz(CMOS250_CUSTOM)
        ppc = IBM_POWERPC_1GHZ.frequency_mhz(CMOS250_CUSTOM)
        xtensa = TENSILICA_XTENSA.frequency_mhz(CMOS250_ASIC)
        assert 700 < alpha < 950
        assert 900 < ppc < 1150
        assert 220 < xtensa < 280

    def test_cycle_fo4_matches_paper(self):
        assert ALPHA_21264A.cycle_fo4 == pytest.approx(15.0)
        assert IBM_POWERPC_1GHZ.cycle_fo4 == pytest.approx(12.6, abs=0.5)
        assert TENSILICA_XTENSA.cycle_fo4 == pytest.approx(44.0, abs=0.5)
        assert UNPIPELINED_ASIC.cycle_fo4 > 150

    def test_deeper_pipeline_higher_cpi(self):
        shallow = MicroArchitecture("s", stages=4)
        deep = MicroArchitecture("d", stages=12)
        assert deep.cpi() > shallow.cpi()

    def test_wide_issue_lowers_cpi_until_ilp(self):
        narrow = MicroArchitecture("n", stages=7, issue_width=1)
        wide = MicroArchitecture("w", stages=7, issue_width=4)
        wider = MicroArchitecture("ww", stages=7, issue_width=8)
        assert wide.cpi() < narrow.cpi()
        # Beyond the workload ILP there is no further gain.
        assert wider.cpi() == pytest.approx(wide.cpi())

    def test_alpha_beats_single_issue_on_ilp(self):
        rich_ilp = Workload(branch_fraction=0.1, load_use_fraction=0.05,
                            ilp=4.0)
        speedup = ALPHA_21264A.speedup_over(
            IBM_POWERPC_1GHZ, CMOS250_CUSTOM, rich_ilp
        )
        assert speedup > 1.5

    def test_best_depth_is_interior(self):
        stages, _mips = best_pipeline_depth(
            60.0, 3.0, CMOS250_CUSTOM, max_stages=40
        )
        assert 4 <= stages <= 35

    def test_better_predictor_allows_deeper_pipe(self):
        bad, _ = best_pipeline_depth(
            60.0, 3.0, CMOS250_CUSTOM, predictor_accuracy=0.7
        )
        good, _ = best_pipeline_depth(
            60.0, 3.0, CMOS250_CUSTOM, predictor_accuracy=0.99
        )
        assert good >= bad

    def test_validation(self):
        with pytest.raises(PipelineError):
            MicroArchitecture("x", stages=0)
        with pytest.raises(PipelineError):
            Workload(branch_fraction=1.5)
        with pytest.raises(PipelineError):
            Workload(ilp=0.5)
