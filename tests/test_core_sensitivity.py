"""Tests for the factor-sensitivity analysis (Section 9's judgements)."""

import math

import pytest

from repro.core import FactorModel, FactorError, measured_model
from repro.core.sensitivity import (
    overstatement_test,
    sensitivity_analysis,
    tornado_table,
)


class TestSensitivity:
    def test_pipelining_dominates(self):
        rows = sensitivity_analysis()
        assert rows[0].name == "microarchitecture"
        assert rows[1].name == "process_variation"

    def test_shares_sum_to_one(self):
        rows = sensitivity_analysis()
        assert sum(r.log_share for r in rows) == pytest.approx(1.0)

    def test_halved_between_removed_and_total(self):
        model = FactorModel()
        total = model.total_product()
        for row in sensitivity_analysis(model):
            assert row.total_if_removed < row.total_if_halved < total

    def test_minor_factors_are_minor(self):
        # Section 9: floorplanning and circuit design "probably
        # overstated" -- together they carry well under a quarter of the
        # log gap.
        share = overstatement_test()
        assert share < 0.25
        # Removing both entirely still leaves a >11x story.
        model = FactorModel()
        residual = model.residual_after(["floorplanning", "sizing"])
        assert residual > 11.0

    def test_major_factors_are_major(self):
        share = overstatement_test(
            minor_factors=("microarchitecture", "process_variation")
        )
        assert share > 0.6

    def test_unknown_factor_rejected(self):
        with pytest.raises(FactorError):
            overstatement_test(minor_factors=("wizardry",))

    def test_tornado_table(self):
        text = tornado_table()
        assert "microarchitecture" in text
        assert "#" in text

    def test_measured_model_supported(self):
        model = measured_model(
            {"microarchitecture": 3.5, "process_variation": 1.8}
        )
        rows = sensitivity_analysis(model)
        assert len(rows) == 2
        assert rows[0].name == "microarchitecture"

    def test_degenerate_model_rejected(self):
        flat = measured_model({"microarchitecture": 1.0})
        with pytest.raises(FactorError):
            sensitivity_analysis(flat)
