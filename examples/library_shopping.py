"""Library shopping: the Section 6 cell-library quality study.

Maps the same design onto three libraries -- impoverished (two drives,
single polarity), rich ASIC, and continuous custom -- sizes each, and
compares the outcomes.  Also demonstrates the Liberty-style export so a
library can be inspected on disk.

Run with::

    python examples/library_shopping.py
"""

import tempfile

from repro.cells import (
    custom_library,
    from_liberty,
    poor_asic_library,
    rich_asic_library,
    to_liberty,
)
from repro.sizing import size_for_speed, total_area_um2
from repro.sta import asic_clock, fo4_depth, solve_min_period
from repro.sta.sequential import register_boundaries
from repro.synth import map_design, parse_expression
from repro.tech import CMOS250_ASIC

#: A representative random-logic cone: next-state logic of a controller.
DESIGN = {
    "n0": "(s0 & ~s1 & req) | (s1 & ~grant)",
    "n1": "(s0 ^ s1) & (req | ~ack) & ~(err & s0)",
    "busy": "(s0 | s1) & ~err",
}


def implement(library, label: str, sizing_moves: int = 25) -> dict:
    design = {out: parse_expression(text) for out, text in DESIGN.items()}
    module = map_design(design, library, name=f"ctrl_{label}")
    registered = register_boundaries(module, library)
    clock = asic_clock(30.0 * library.technology.fo4_delay_ps)
    sizing = size_for_speed(
        registered, library, clock, max_moves=sizing_moves
    )
    timing = solve_min_period(registered, library, clock)
    return {
        "label": label,
        "library": library.summary(),
        "gates": registered.instance_count(),
        "fo4": fo4_depth(timing, library.technology),
        "mhz": timing.max_frequency_mhz,
        "area": total_area_um2(registered, library),
        "sizing_gain": sizing.speedup,
    }


def main() -> None:
    rows = [
        implement(poor_asic_library(CMOS250_ASIC), "poor"),
        implement(rich_asic_library(CMOS250_ASIC), "rich"),
        implement(custom_library(CMOS250_ASIC), "custom"),
    ]
    print(f"{'library':<8s} {'gates':>6s} {'FO4':>6s} {'MHz':>8s} "
          f"{'area':>8s} {'sizing gain':>12s}")
    for row in rows:
        print(
            f"{row['label']:<8s} {row['gates']:>6d} {row['fo4']:>6.1f} "
            f"{row['mhz']:>8.1f} {row['area']:>8.1f} "
            f"{row['sizing_gain']:>11.2f}x"
        )
    poor, rich = rows[0], rows[1]
    penalty = poor["fo4"] / rich["fo4"] - 1.0
    print()
    print(
        f"two-drive single-polarity library penalty: {100 * penalty:.0f}% "
        "(paper Section 6.1: 'may be 25% slower')"
    )

    library = rich_asic_library(CMOS250_ASIC)
    text = to_liberty(library)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".lib", delete=False
    ) as handle:
        handle.write(text)
        path = handle.name
    with open(path) as handle:
        reloaded = from_liberty(handle.read())
    print()
    print(f"liberty export: wrote {len(text)} bytes to {path}")
    print(f"reloaded {len(reloaded)} cells; {reloaded.summary()}")


if __name__ == "__main__":
    main()
