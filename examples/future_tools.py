"""Future tools: the paper's "what can we do about it" program, running.

Each section of the paper ends with remedies for ASIC designers; this
example demonstrates the ones implemented as extensions of the core
reproduction:

* resynthesis of a mapped netlist (Section 6.2);
* delay-balanced pipeline cuts (Section 4.1);
* simultaneous gate and wire sizing (Section 6.2, "future" tools);
* skew-tolerant domino clocking (reference [15]);
* down-binning and over-clocking headroom (Section 8.1.1);
* the gap roadmap (Section 9's two readings).

Run with::

    python examples/future_tools.py
"""

from repro.cells import rich_asic_library
from repro.circuit import SkewTolerantClocking, skew_tolerance_speedup
from repro.core import asymptotic_gap, project_gap, roadmap_table
from repro.datapath import alu
from repro.pipeline import pipeline_module, pipeline_module_balanced
from repro.sizing import joint_size, sequential_size
from repro.sta import analyze, asic_clock, solve_min_period
from repro.synth import resynthesize
from repro.tech import CMOS250_ASIC
from repro.variation import (
    NEW_PROCESS,
    overclocking_headroom,
    sample_chip_speeds,
    ship_against_demand,
)


def main() -> None:
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)

    print("1. Resynthesis of a mapped 8-bit ALU (Section 6.2):")
    module = alu(8, library, fast_adder=False)
    before = analyze(module, library, clock).min_period_ps
    report = resynthesize(module, library)
    after = analyze(module, library, clock).min_period_ps
    print(f"   {report.inverter_pairs_removed} inverter pairs removed, "
          f"{report.complex_gates_formed} complex gates formed")
    print(f"   period {before:.0f} ps -> {after:.0f} ps")
    print()

    print("2. Delay-balanced vs unit-level pipeline cuts (Section 4.1):")
    unit = pipeline_module(alu(8, library, fast_adder=False), library, 4)
    balanced = pipeline_module_balanced(
        alu(8, library, fast_adder=False), library, 4
    )
    p_unit = solve_min_period(unit.module, library, clock).min_period_ps
    p_bal = solve_min_period(balanced.module, library, clock).min_period_ps
    print(f"   unit-level cuts:   {p_unit:7.0f} ps")
    print(f"   delay-balanced:    {p_bal:7.0f} ps "
          f"({100 * (p_unit / p_bal - 1):+.1f}%)")
    print()

    print("3. Joint gate+wire sizing on a 5 mm net (Section 6.2, ref [6]):")
    joint = joint_size(CMOS250_ASIC, 5000.0, 20.0)
    seq = sequential_size(CMOS250_ASIC, 5000.0, 20.0)
    print(f"   sequential (gate then wire): {seq.delay_ps:6.1f} ps")
    print(f"   joint optimisation:          {joint.delay_ps:6.1f} ps "
          f"(gate {joint.gate_size:.0f}x, wire "
          f"{joint.wire_width_um / CMOS250_ASIC.interconnect.min_width_um:.1f}x"
          " width)")
    print()

    print("4. Skew-tolerant domino clocking (reference [15]):")
    plan = SkewTolerantClocking()
    print(f"   conventional 10-FO4 stage + 3 FO4 flop + 10% skew: "
          f"{(10 + 3) / 0.9:.1f} FO4 cycle")
    print(f"   skew-tolerant domino: {plan.cycle_fo4(10.0, 0.10):.1f} FO4 "
          f"({skew_tolerance_speedup(10.0):.2f}x)")
    print()

    print("5. Down-binning and over-clocking (Section 8.1.1):")
    dist = sample_chip_speeds(400.0, NEW_PROCESS, count=12000, seed=23)
    edges = [dist.percentile(5), dist.percentile(40), dist.percentile(80)]
    outcome = ship_against_demand(dist, edges, [0.6, 0.25, 0.1])
    print(f"   {100 * outcome.down_binned_fraction:.1f}% of parts "
          "down-binned to satisfy slow-grade demand")
    print(f"   mean over-clocking headroom {outcome.mean_headroom:.2f}x, "
          f"p90 {outcome.p90_headroom:.2f}x")
    print(f"   headroom if everything ships at the p5 grade: "
          f"{overclocking_headroom(dist, dist.percentile(5)):.2f}x")
    print()

    print("6. Does the gap close? (Section 9):")
    print(roadmap_table(project_gap(generations=4, initial_gap=8.0)))
    print(f"   asymptote with perfect ASIC tools: "
          f"{asymptotic_gap(8.0):.2f}x "
          "(the custom-only pipelining + domino share)")


if __name__ == "__main__":
    main()
