"""Adder generators: ripple-carry, carry-lookahead, carry-select, Kogge-Stone.

These are the "fast datapath designs, such as carry-lookahead and
carry-select adders" of Section 4.2 -- the regular structures a custom
designer (or a macro library) implements in far fewer logic levels than
RTL synthesis of ``a + b`` produces.  All generators share the same port
convention:

* inputs ``a0..a{n-1}``, ``b0..b{n-1}``, ``cin``;
* outputs ``s0..s{n-1}``, ``cout``.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def _adder_frame(bits: int, name: str) -> tuple[Module, list[str], list[str], str]:
    if bits < 1:
        raise SynthesisError("adder width must be at least 1")
    module = Module(name)
    a = [module.add_input(f"a{i}") for i in range(bits)]
    b = [module.add_input(f"b{i}") for i in range(bits)]
    cin = module.add_input("cin")
    for i in range(bits):
        module.add_output(f"s{i}")
    module.add_output("cout")
    return module, a, b, cin


def ripple_carry_adder(
    bits: int, library: CellLibrary, name: str = "rca"
) -> Module:
    """Ripple-carry adder: minimal area, O(n) critical path.

    This is what naive RTL synthesis of ``a + b`` degenerates to -- the
    baseline the fast adders are measured against.
    """
    module, a, b, cin = _adder_frame(bits, name)
    emit = Emitter(module, library)
    carry = cin
    for i in range(bits):
        p = emit.xor2(a[i], b[i])
        emit.xor2(p, carry, out=f"s{i}")
        if i < bits - 1:
            carry = emit.or2(emit.and2(a[i], b[i]), emit.and2(p, carry))
        else:
            emit.or2(emit.and2(a[i], b[i]), emit.and2(p, carry), out="cout")
    return module


def carry_lookahead_adder(
    bits: int, library: CellLibrary, name: str = "cla", group: int = 4
) -> Module:
    """Hierarchical carry-lookahead adder with 4-bit groups.

    Generate/propagate pairs are combined through recursive lookahead
    blocks, giving O(log n) carry depth: the classic CLA of Section 4.2.
    """
    if group < 2:
        raise SynthesisError("lookahead group must be at least 2")
    module, a, b, cin = _adder_frame(bits, name)
    emit = Emitter(module, library)
    g = [emit.and2(a[i], b[i]) for i in range(bits)]
    p = [emit.xor2(a[i], b[i]) for i in range(bits)]
    carries = _lookahead_carries(emit, g, p, cin, group)
    for i in range(bits):
        emit.xor2(p[i], carries[i], out=f"s{i}")
    emit.buf(carries[bits], out="cout")
    return module


def _lookahead_carries(
    emit: Emitter, g: list[str], p: list[str], cin: str, group: int
) -> list[str]:
    """Carries c0..cn for generate/propagate vectors, recursively.

    Returns n+1 nets: c[i] is the carry *into* bit i; c[n] is carry-out.
    """
    n = len(g)
    if n <= group:
        # Flat lookahead: c[i+1] = g_i | p_i g_{i-1} | ... | p_i..p_0 cin.
        carries = [cin]
        for i in range(n):
            terms = []
            for j in range(i, -1, -1):
                factors = [g[j]] + p[j + 1: i + 1]
                terms.append(emit.and_tree(factors) if len(factors) > 1
                             else factors[0])
            chain = p[0: i + 1] + [cin]
            terms.append(emit.and_tree(chain))
            carries.append(emit.or_tree(terms))
        return carries
    # Recursive: form group G/P, look ahead over groups, recurse inside.
    group_g: list[str] = []
    group_p: list[str] = []
    bounds = list(range(0, n, group))
    for start in bounds:
        end = min(start + group, n)
        gg, gp = _group_gp(emit, g[start:end], p[start:end])
        group_g.append(gg)
        group_p.append(gp)
    group_carries = _lookahead_carries(emit, group_g, group_p, cin, group)
    carries: list[str] = []
    for idx, start in enumerate(bounds):
        end = min(start + group, n)
        inner = _lookahead_carries(
            emit, g[start:end], p[start:end], group_carries[idx], group
        )
        carries.extend(inner[:-1])
    carries.append(group_carries[-1])
    return carries


def _group_gp(emit: Emitter, g: list[str], p: list[str]) -> tuple[str, str]:
    """Block generate/propagate of a group of bits."""
    k = len(g)
    terms = []
    for j in range(k - 1, -1, -1):
        factors = [g[j]] + p[j + 1: k]
        terms.append(emit.and_tree(factors) if len(factors) > 1 else factors[0])
    block_g = emit.or_tree(terms) if len(terms) > 1 else terms[0]
    block_p = emit.and_tree(p) if len(p) > 1 else p[0]
    return block_g, block_p


def carry_select_adder(
    bits: int, library: CellLibrary, name: str = "csel", block: int = 4
) -> Module:
    """Carry-select adder: duplicated per-block ripple chains plus muxes.

    Each block computes its sums for carry-in 0 and 1 in parallel; the
    arriving block carry selects between them, so the critical path is
    one block plus a mux chain.
    """
    if block < 1:
        raise SynthesisError("carry-select block must be at least 1")
    module, a, b, cin = _adder_frame(bits, name)
    emit = Emitter(module, library)

    def ripple(lo: int, hi: int, carry: str) -> tuple[list[str], str]:
        sums = []
        for i in range(lo, hi):
            p = emit.xor2(a[i], b[i])
            sums.append(emit.xor2(p, carry))
            carry = emit.or2(emit.and2(a[i], b[i]), emit.and2(p, carry))
        return sums, carry

    # First block uses the true carry-in directly.
    first_hi = min(block, bits)
    sums, carry = ripple(0, first_hi, cin)
    for i, s in enumerate(sums):
        emit.buf(s, out=f"s{i}")
    zero = None
    one = None
    lo = first_hi
    while lo < bits:
        hi = min(lo + block, bits)
        if zero is None:
            # Constant 0/1 block carries realised as x & ~x and x | ~x.
            na = emit.inv(a[0])
            zero = emit.and2(a[0], na)
            one = emit.or2(a[0], na)
        sums0, carry0 = ripple(lo, hi, zero)
        sums1, carry1 = ripple(lo, hi, one)
        for offset in range(hi - lo):
            emit.mux2(sums0[offset], sums1[offset], carry, out=f"s{lo + offset}")
        carry = emit.mux2(carry0, carry1, carry)
        lo = hi
    emit.buf(carry, out="cout")
    return module


def kogge_stone_adder(
    bits: int, library: CellLibrary, name: str = "ks"
) -> Module:
    """Kogge-Stone parallel-prefix adder: O(log n) depth, wire-heavy.

    The canonical custom-datapath adder; its prefix network computes every
    carry in ceil(log2 n) combine stages.
    """
    module, a, b, cin = _adder_frame(bits, name)
    emit = Emitter(module, library)
    g = [emit.and2(a[i], b[i]) for i in range(bits)]
    p = [emit.xor2(a[i], b[i]) for i in range(bits)]
    # Fold cin into bit 0's generate: g0' = g0 | p0 & cin.
    gen = list(g)
    prop = list(p)
    gen[0] = emit.or2(g[0], emit.and2(p[0], cin))
    # Prefix combine: (g, p) o (g', p') = (g | p & g', p & p').
    dist = 1
    while dist < bits:
        new_gen = list(gen)
        new_prop = list(prop)
        for i in range(dist, bits):
            new_gen[i] = emit.or2(gen[i], emit.and2(prop[i], gen[i - dist]))
            new_prop[i] = emit.and2(prop[i], prop[i - dist])
        gen, prop = new_gen, new_prop
        dist *= 2
    # carry into bit i is gen[i-1]; carry into bit 0 is cin.
    emit.xor2(p[0], cin, out="s0")
    for i in range(1, bits):
        emit.xor2(p[i], gen[i - 1], out=f"s{i}")
    emit.buf(gen[bits - 1], out="cout")
    return module


def simulate_adder(
    module: Module, library: CellLibrary, bits: int, a: int, b: int, cin: int = 0
) -> tuple[int, int]:
    """Drive an adder netlist with integers; returns ``(sum, carry_out)``."""
    from repro.synth.simulate import simulate_combinational

    if a < 0 or b < 0 or a >= (1 << bits) or b >= (1 << bits):
        raise SynthesisError(f"operands out of range for {bits} bits")
    vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
    vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
    vec["cin"] = bool(cin)
    out = simulate_combinational(module, library, vec)
    total = sum((1 << i) for i in range(bits) if out[f"s{i}"])
    return total, int(out["cout"])
