"""Deterministic process-pool sweep runner with live event streaming.

Fans a list of tasks across worker processes with three guarantees the
Monte Carlo sampler and the design-space surveys rely on:

* **Ordered reduce** -- results come back in task order, whatever order
  the workers finished in.
* **Determinism in the worker count** -- the runner never partitions
  work by worker; callers derive per-task seeds from the *task index*
  (:func:`task_seeds`), so ``workers=1`` and ``workers=8`` produce
  identical outputs.
* **Trace propagation** -- when observability is enabled in the parent,
  each worker records its own spans and ships the finished list back
  with its result; the parent re-roots them under the sweep span via
  :meth:`repro.obs.trace.Tracer.adopt`, so ``--trace`` output stays
  complete under ``--workers N``.

On top of those, the runner is the cross-process transport of the live
telemetry layer (:mod:`repro.obs.live`).  When the live bus is enabled
in the parent (or stall detection is requested), each worker gets its
own bus whose events -- span open/close, flow-stage progress, task
start/done, heartbeats -- are *forwarded over a multiprocessing queue
as they happen*; the parent drains the queue between completion polls
and re-sequences the events into its own bus, so dashboards and JSONL
sinks see worker progress live instead of at ordered-reduce time.  The
result path is unchanged: span adoption and ledger merging still run on
the shipped-back lists, so traces and metrics are identical with the
bus on or off.

Worker liveness rides the same channel: a daemon :class:`~repro.obs.
live.Heartbeat` thread in each worker publishes periodic beacons even
while the worker's main thread is inside a solver, and the parent's
:class:`~repro.obs.live.StallDetector` raises a structured
:class:`SweepStallError` when a busy worker goes silent past the
configured timeout -- a wedged worker becomes a diagnostic, not a hung
sweep.

When the run ledger is recording in the parent, workers are switched
into *buffering* mode: run records they would have written (e.g. the
flow records of a design-space sweep point) come back with the results
and are merged into the parent's ledger, marked ``worker=True`` -- one
ledger regardless of worker count.

``workers <= 1`` (or a single task) short-circuits to a plain serial
loop in-process -- no pool, no pickling -- which still publishes the
same per-task progress events when the bus is on.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue_mod
import time
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.obs import instrument as _instrument
from repro.obs import ledger as _ledger
from repro.obs import live as _live
from repro.obs.events import Event


class SweepError(ValueError):
    """Raised for invalid sweep configuration."""


class SweepStallError(RuntimeError):
    """A pool worker went silent past the stall timeout.

    Attributes:
        reports: structured :class:`~repro.obs.live.StallReport` dicts,
            worst (longest-silent) first.
    """

    def __init__(self, message: str, reports: list[dict]) -> None:
        super().__init__(message)
        self.reports = reports


#: Sentinel: "read this knob from repro.obs.live.watch_config()".
_WATCH_DEFAULT = object()

#: Parent-side completion poll interval while draining worker events.
_POLL_S = 0.05

#: Event kinds not forwarded across the worker queue.  Metric deltas
#: fire per observation inside hot solver loops; streaming each one
#: through a multiprocessing queue would cost more than the metric is
#: worth, and worker metrics were never merged into the parent registry
#: anyway.  Everything coarser (spans, stages, tasks, heartbeats) goes
#: through.
FORWARD_SKIP_KINDS = frozenset({"metric.delta"})


def task_seeds(seed: int, count: int) -> list[int]:
    """Independent per-task RNG seeds derived from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the streams are
    statistically independent and the list depends only on ``(seed,
    count)`` -- never on the worker count or scheduling order.
    """
    if count < 0:
        raise SweepError("seed count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


# ---------------------------------------------------------------------------
# Worker side.

#: Per-worker-process live state set up by :func:`_pool_init`.
_worker_heartbeat: _live.Heartbeat | None = None


def _pool_init(event_queue: Any, heartbeat_s: float | None) -> None:
    """Pool initializer: wire this worker's bus to the parent queue.

    Runs once per worker process.  The worker gets a fresh bus labelled
    ``worker-<pid>`` whose events are forwarded (minus the kinds in
    :data:`FORWARD_SKIP_KINDS`) into the parent's queue, plus an
    optional heartbeat beacon thread.
    """
    global _worker_heartbeat
    if event_queue is None:
        return
    bus = _live.enable(source=f"worker-{os.getpid()}", fresh=True)

    def forward(payload: dict) -> None:
        if payload.get("kind") not in FORWARD_SKIP_KINDS:
            event_queue.put_nowait(payload)

    bus.set_forward(forward)
    _worker_heartbeat = None
    if heartbeat_s is not None and heartbeat_s > 0:
        _worker_heartbeat = _live.Heartbeat(bus, heartbeat_s).start()


def _task_metrics(summarize: Callable[[Any], dict] | None,
                  result: Any) -> dict:
    """Safe ``m.<key>`` attrs for a task.done event."""
    if summarize is None:
        return {}
    try:
        summary = summarize(result)
    except Exception:
        return {}
    return {
        f"m.{key}": float(value)
        for key, value in summary.items()
        if isinstance(value, (int, float))
    }


def _pool_task(payload: tuple) -> tuple[Any, list | None, list | None]:
    """Worker-side wrapper: run one task; capture spans, buffer run
    records, and publish task progress events if the parent asked."""
    fn, task, index, label, capture, ledger_on, summarize = payload
    if ledger_on:
        _ledger.enable_buffering()
    if capture:
        _instrument.enable(fresh=True)
    if _worker_heartbeat is not None:
        _worker_heartbeat.set_task(index)
    _live.emit("task.start", label, index=index)
    started = time.perf_counter()
    try:
        result = fn(task)
    except BaseException:
        _live.emit("task.done", label, index=index, error=True,
                   wall_s=time.perf_counter() - started)
        if _worker_heartbeat is not None:
            _worker_heartbeat.set_task(None)
        raise
    _live.emit(
        "task.done", label, index=index,
        wall_s=time.perf_counter() - started,
        **_task_metrics(summarize, result),
    )
    if _worker_heartbeat is not None:
        _worker_heartbeat.set_task(None)
    spans = obs.get_tracer().finished() if capture else None
    records = _ledger.drain_buffer() if ledger_on else None
    return result, spans, records


# ---------------------------------------------------------------------------
# Parent side.

def _resolve_watch(heartbeat_s: Any, stall_timeout_s: Any):
    """Apply :func:`repro.obs.live.watch_config` defaults to the knobs."""
    config = _live.watch_config()
    if heartbeat_s is _WATCH_DEFAULT:
        heartbeat_s = config.heartbeat_s
    if stall_timeout_s is _WATCH_DEFAULT:
        stall_timeout_s = config.stall_timeout_s
    if stall_timeout_s is not None and stall_timeout_s <= 0:
        raise SweepError("stall timeout must be positive")
    return heartbeat_s, stall_timeout_s


class _StreamMonitor:
    """Parent-side event pump: drain, re-sequence, detect stalls.

    Owns the per-sweep progress state (done counts, ETA) and the stall
    detector; :meth:`pump` is called between completion polls and after
    the pool drains.
    """

    def __init__(self, label: str, total: int,
                 stall_timeout_s: float | None) -> None:
        self.label = label
        self.total = total
        self.done = 0
        self.started = time.monotonic()
        self.detector = (
            _live.StallDetector(stall_timeout_s)
            if stall_timeout_s is not None else None
        )

    def pump(self, event_queue: Any) -> None:
        """Drain pending worker events into the parent bus."""
        progressed = False
        while True:
            try:
                payload = event_queue.get_nowait()
            except _queue_mod.Empty:
                break
            if _live.enabled():
                event = _live.get_bus().ingest(payload)
            else:
                try:
                    event = Event.from_dict(payload)
                except ValueError:
                    event = None
            if event is None:
                continue
            if self.detector is not None:
                self.detector.note(event)
            # Only this sweep's own completions count: a task's flow can
            # run nested serial sweeps whose task.done events share the
            # stream but carry their own label.
            if event.kind == "task.done" and event.name == self.label:
                self.done += 1
                progressed = True
        if progressed and _live.enabled():
            elapsed = time.monotonic() - self.started
            attrs: dict = {"done": self.done, "total": self.total}
            if 0 < self.done < self.total:
                attrs["eta_s"] = (elapsed / self.done
                                  * (self.total - self.done))
            _live.emit("sweep.progress", self.label, **attrs)

    def final_pump(self, event_queue: Any, grace_s: float = 0.5) -> None:
        """Drain the tail of the stream after the pool finishes.

        Results arriving via the pool do not imply the event queue is
        empty -- the workers' feeder threads race the result path -- so
        keep draining briefly until every task completion has been seen
        (or the grace period ends; the stream is advisory, results
        never wait on it past that).
        """
        deadline = time.monotonic() + grace_s
        self.pump(event_queue)
        while self.done < self.total and time.monotonic() < deadline:
            time.sleep(0.005)
            self.pump(event_queue)

    def check_stalls(self) -> None:
        """Raise :class:`SweepStallError` if a busy worker went silent."""
        if self.detector is None:
            return
        stalled = self.detector.check()
        if not stalled:
            return
        for report in stalled:
            _live.emit("stall", report.source,
                       detail=report.describe(), **report.to_dict())
        raise SweepStallError(
            f"sweep {self.label!r}: {stalled[0].describe()} "
            f"(stall timeout {self.detector.timeout_s:g} s; "
            f"{self.done}/{self.total} tasks done)",
            reports=[report.to_dict() for report in stalled],
        )


def _run_serial(fn: Callable[[Any], Any], items: Sequence[Any],
                label: str,
                summarize: Callable[[Any], dict] | None) -> list[Any]:
    """In-process loop, publishing the same progress events as a pool."""
    results = []
    streaming = _live.enabled()
    started = time.monotonic()
    for index, task in enumerate(items):
        if streaming:
            _live.emit("task.start", label, index=index)
        task_started = time.perf_counter()
        result = fn(task)
        results.append(result)
        if streaming:
            _live.emit(
                "task.done", label, index=index,
                wall_s=time.perf_counter() - task_started,
                **_task_metrics(summarize, result),
            )
            attrs: dict = {"done": index + 1, "total": len(items)}
            if index + 1 < len(items):
                elapsed = time.monotonic() - started
                attrs["eta_s"] = (elapsed / (index + 1)
                                  * (len(items) - index - 1))
            _live.emit("sweep.progress", label, **attrs)
    return results


def run_sweep(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int = 1,
    label: str = "par.sweep",
    summarize: Callable[[Any], dict] | None = None,
    heartbeat_s: Any = _WATCH_DEFAULT,
    stall_timeout_s: Any = _WATCH_DEFAULT,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Args:
        fn: picklable task function (module-level callable).
        tasks: task inputs; materialised up front for ordered dispatch.
        workers: process count; <= 1 runs serially in-process.
        label: span name the sweep is recorded under (also the ``name``
            of its task/progress events).
        summarize: optional picklable ``result -> {key: scalar}`` hook;
            its values ride each ``task.done`` event as ``m.<key>``
            attrs and feed the live running aggregates
            (:func:`repro.obs.live.get_aggregate`).
        heartbeat_s: worker heartbeat interval in seconds; None
            disables the beacon.  Defaults to the process-wide
            :func:`repro.obs.live.watch_config`.
        stall_timeout_s: raise :class:`SweepStallError` when a busy
            worker sends no event (heartbeats included) for this many
            seconds; None disables detection.  Defaults to the
            process-wide watch config.

    Returns:
        ``[fn(t) for t in tasks]`` in task order, regardless of
        ``workers``.

    Raises:
        SweepStallError: stall detection was armed and a worker went
            silent past the timeout; the pool is terminated.
    """
    if workers < 0:
        raise SweepError("workers must be non-negative")
    heartbeat_s, stall_timeout_s = _resolve_watch(
        heartbeat_s, stall_timeout_s
    )
    items: Sequence[Any] = list(tasks)
    capture = obs.enabled()
    with obs.span(label, tasks=len(items), workers=max(workers, 1)):
        obs.count("par.sweep.runs")
        obs.count("par.sweep.tasks", len(items))
        if workers <= 1 or len(items) <= 1:
            return _run_serial(fn, items, label, summarize)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        ledger_on = _ledger.enabled()
        payloads = [
            (fn, task, index, label, capture, ledger_on, summarize)
            for index, task in enumerate(items)
        ]
        # The streaming transport only exists when someone is watching:
        # with the bus off and no stall policy, the pool path is
        # byte-for-byte the old one (no queue, no initializer).
        streaming = _live.enabled() or stall_timeout_s is not None
        event_queue = ctx.Queue() if streaming else None
        pool_kwargs: dict = {"processes": workers}
        if streaming:
            pool_kwargs.update(
                initializer=_pool_init,
                initargs=(event_queue, heartbeat_s),
            )
        with ctx.Pool(**pool_kwargs) as pool:
            if not streaming:
                raw = pool.map(_pool_task, payloads)
            else:
                monitor = _StreamMonitor(label, len(items),
                                         stall_timeout_s)
                pending = pool.map_async(_pool_task, payloads)
                while not pending.ready():
                    monitor.pump(event_queue)
                    monitor.check_stalls()
                    pending.wait(_POLL_S)
                monitor.final_pump(event_queue)
                raw = pending.get()
        results = []
        tracer = obs.get_tracer()
        for result, spans, records in raw:
            results.append(result)
            if spans:
                tracer.adopt(spans)
            if records:
                _ledger.adopt(records)
        return results
