"""E8 -- Section 6.2: post-layout sizing and resynthesis gains.

Claims measured:

* "sizing transistors minimally to reduce power consumption, except on
  critical paths where they are optimally sized ... can make a speed
  difference of 20% or more" (TILOS, reference [7]) -- we map everything
  at minimum drive, place it, then let the sensitivity sizer recover
  speed with wire loads in view;
* "iterative transistor resizing and resynthesis can improve speeds by
  20%" -- a second sizing pass after buffering (the resynthesis step);
* the method-of-logical-effort optimum as the continuous bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import alu
from repro.physical import place
from repro.sizing import (
    PathStage,
    buffer_high_fanout,
    downsize_off_critical,
    optimize_path,
    size_for_speed,
    total_area_um2,
)
from repro.sta import analyze, asic_clock, register_boundaries
from repro.tech import CMOS250_ASIC

BITS = 8


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    # Map at minimum drive: the naive pre-layout netlist.
    from repro.flows.asic import WORKLOADS
    from repro.synth import TechnologyMapper  # noqa: F401 (doc pointer)

    comb = alu(BITS, library, fast_adder=False)
    module = register_boundaries(comb, library)
    for inst in list(module.iter_instances()):
        cell = library.get(inst.cell_name)
        if not cell.is_sequential:
            module.replace_cell(
                inst.name, library.smallest(cell.base_name).name
            )
    placement = place(module, library, quality="careful", seed=3)
    wire = placement.parasitics(library)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)

    # Pass 1: the single-shot sizing a synthesis tool applies (a bounded
    # move budget).
    first = size_for_speed(module, library, clock, wire=wire, max_moves=25)
    # Iterate: restructure the heavily loaded nets, then keep sizing --
    # the "iterative transistor resizing and resynthesis" of Section 6.2.
    buffer_high_fanout(module, library, max_fanout=8)
    second = size_for_speed(module, library, clock, wire=wire, max_moves=80)
    area_before_downsize = total_area_um2(module, library)
    shrunk = downsize_off_critical(module, library, clock, wire=wire)
    area_after = total_area_um2(module, library)
    return first, second, shrunk, area_before_downsize, area_after


def test_e8_sizing(benchmark):
    first, second, shrunk, area_before, area_after = run_once(
        benchmark, _measure
    )
    total_speedup = first.initial_period_ps / second.final_period_ps
    resynthesis_gain = first.final_period_ps / second.final_period_ps

    rows = [
        row("post-layout sizing of min-drive netlist", "20% or more",
            100 * (first.speedup - 1.0), 15.0, 120.0, fmt="{:.1f}%"),
        row("plus buffering + resize (resynthesis)", "~20%",
            100 * (resynthesis_gain - 1.0), 0.0, 40.0, fmt="{:.1f}%"),
        row("combined iterative improvement", ">= 20%",
            100 * (total_speedup - 1.0), 20.0, 200.0, fmt="{:.1f}%"),
        row("off-critical downsizing saves area", "power/area win",
            100 * (1.0 - area_after / area_before), 0.5, 60.0,
            fmt="{:.1f}%"),
    ]

    # The continuous logical-effort bound on an example path.
    stages = [
        PathStage(4 / 3, 2.0), PathStage(1.0, 1.0),
        PathStage(5 / 3, 2.0), PathStage(1.0, 1.0),
    ]
    solution = optimize_path(stages, electrical_effort=12.0)
    print()
    print(
        f"logical-effort optimum for a NAND-INV-NOR-INV path, H=12: "
        f"{solution.delay_tau:.1f} tau at stage effort "
        f"{solution.stage_effort:.2f}"
    )
    print(f"downsized {shrunk} off-critical gates after speed closure")

    report("E8  Post-layout sizing and resynthesis (Section 6.2)", rows)
    for entry in rows:
        assert entry.ok, entry
