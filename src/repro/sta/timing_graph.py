"""Timing-graph construction: loads, parasitics, start/end points.

The timing graph view binds a netlist to its library: every net gets a
capacitive load (sink pin caps plus optional wire parasitics from the
physical layer) and every path start/end point is classified.  The
propagation itself lives in :mod:`repro.sta.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.cell import Cell, CellKind
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref


class TimingError(ValueError):
    """Raised for netlists the timing engine cannot analyse."""


@dataclass
class WireParasitics:
    """Per-net wire loading handed over by the physical layer.

    Attributes:
        extra_cap_ff: additional capacitive load per net (wire cap).
        extra_delay_ps: additional propagation delay per net (distributed
            RC / repeater-chain delay as computed by
            :mod:`repro.physical.wires`).
    """

    extra_cap_ff: dict[str, float] = field(default_factory=dict)
    extra_delay_ps: dict[str, float] = field(default_factory=dict)

    def cap(self, net: str) -> float:
        return self.extra_cap_ff.get(net, 0.0)

    def delay(self, net: str) -> float:
        return self.extra_delay_ps.get(net, 0.0)

    def merged_with(self, other: "WireParasitics") -> "WireParasitics":
        """Combine two parasitic annotations additively."""
        cap = dict(self.extra_cap_ff)
        for net, value in other.extra_cap_ff.items():
            cap[net] = cap.get(net, 0.0) + value
        delay = dict(self.extra_delay_ps)
        for net, value in other.extra_delay_ps.items():
            delay[net] = delay.get(net, 0.0) + value
        return WireParasitics(cap, delay)


class TimingGraph:
    """Netlist + library binding with load computation.

    Args:
        module: the mapped netlist.
        library: cell library resolving every instance.
        wire: optional wire parasitics.
        output_load_ff: assumed load on each module output port (a
            receiving register or downstream block), defaulting to four
            unit-inverter input capacitances.
    """

    def __init__(
        self,
        module: Module,
        library: CellLibrary,
        wire: WireParasitics | None = None,
        output_load_ff: float | None = None,
    ) -> None:
        self.module = module
        self.library = library
        self.wire = wire or WireParasitics()
        if output_load_ff is None:
            output_load_ff = 4.0 * library.technology.unit_input_cap_ff
        self.output_load_ff = output_load_ff
        self._cells: dict[str, Cell] = {}
        for inst in module.iter_instances():
            self._cells[inst.name] = library.get(inst.cell_name)

    def cell_of(self, instance_name: str) -> Cell:
        """Library cell of an instance (cached)."""
        return self._cells[instance_name]

    def rebind(self, instance_name: str) -> Cell:
        """Re-resolve one instance's cell after a ``replace_cell``.

        Incremental sizing mutates instance cell bindings in place; this
        refreshes the cache entry and returns the new cell.
        """
        cell = self.library.get(self.module.instance(instance_name).cell_name)
        self._cells[instance_name] = cell
        return cell

    def net_load_ff(self, net: str) -> float:
        """Total capacitive load on a net: pins + wire + port allowance."""
        load = self.wire.cap(net)
        for sink in self.module.sinks_of(net):
            if is_port_ref(sink):
                load += self.output_load_ff
                continue
            inst_name, pin = sink
            load += self.cell_of(inst_name).input_cap_ff(pin)
        return load

    def instance_load_ff(self, instance_name: str) -> float:
        """Total load driven by an instance: the sum over its output nets.

        Single-output cells (every cell our builders produce) reduce to
        ``net_load_ff`` of the one output; multi-output instances charge
        the driver with every fanout net, matching what the gate
        physically drives.  Both the deterministic and statistical
        engines compute gate delay against this load.
        """
        load = 0.0
        for net in self.module.instance(instance_name).outputs.values():
            load += self.net_load_ff(net)
        return load

    def sequential_instances(self) -> list[str]:
        """Names of flip-flop and latch instances."""
        return [
            name for name, cell in self._cells.items() if cell.is_sequential
        ]

    def sequential_cell_names(self) -> set[str]:
        return self.library.sequential_cell_names()

    def is_latch(self, instance_name: str) -> bool:
        return self.cell_of(instance_name).kind is CellKind.LATCH

    def endpoints(self) -> list[tuple[str, object]]:
        """All timing endpoints.

        Returns a list of ``(kind, detail)`` pairs: ``("port", name)``
        for module outputs, ``("register", (instance, data_pin))`` for
        sequential data inputs.
        """
        ends: list[tuple[str, object]] = [
            ("port", name) for name in self.module.outputs()
        ]
        for name in self.sequential_instances():
            cell = self.cell_of(name)
            for pin in cell.data_input_names():
                ends.append(("register", (name, pin)))
        return ends

    def start_nets(self) -> dict[str, str]:
        """Map from start-point net to start kind (``input``/``register``)."""
        starts = {name: "input" for name in self.module.inputs()}
        for name in self.sequential_instances():
            inst = self.module.instance(name)
            for net in inst.outputs.values():
                starts[net] = "register"
        return starts
