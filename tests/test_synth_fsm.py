"""Tests for FSM synthesis (the Section 4.1 control-logic substrate)."""

import pytest

from repro.cells import rich_asic_library
from repro.netlist import find_combinational_loop
from repro.synth import SynthesisError, simulate_sequential
from repro.synth.fsm import (
    FsmSpec,
    Transition,
    bus_interface_spec,
    next_state_expressions,
    synthesize_fsm,
)
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)


def toggle_spec() -> FsmSpec:
    return FsmSpec(
        name="toggle",
        states=["A", "B"],
        inputs=["en"],
        transitions=[
            Transition("A", "B", "en"),
            Transition("B", "A", "en"),
        ],
        outputs={"in_b": {"B"}},
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(SynthesisError):
            FsmSpec("x", ["ONLY"], [], [])
        with pytest.raises(SynthesisError):
            FsmSpec("x", ["A", "A"], [], [])
        with pytest.raises(SynthesisError):
            FsmSpec("x", ["A", "B"], [],
                    [Transition("A", "MISSING", "1")])
        with pytest.raises(SynthesisError):
            FsmSpec("x", ["A", "B"], [], [], outputs={"y": {"Z"}})

    def test_state_bits(self):
        assert toggle_spec().state_bits == 1
        assert bus_interface_spec().state_bits == 2

    def test_reference_simulation_toggle(self):
        spec = toggle_spec()
        stream = [{"en": v} for v in (True, False, True, True)]
        trace = spec.simulate(stream)
        assert [s for s, _ in trace] == ["A", "B", "B", "A"]
        assert trace[1][1]["in_b"] is True

    def test_hold_without_match(self):
        spec = toggle_spec()
        trace = spec.simulate([{"en": False}] * 3)
        assert all(state == "A" for state, _ in trace)


class TestNextStateLogic:
    def test_expressions_match_reference(self):
        spec = bus_interface_spec()
        design = next_state_expressions(spec)
        # Walk the reference machine and the expressions side by side.
        state_index = 0
        import itertools

        for vec in itertools.product([False, True], repeat=4):
            stimulus = dict(zip(spec.inputs, vec))
            for start_index in range(len(spec.states)):
                env = dict(stimulus)
                env["s0"] = bool(start_index & 1)
                env["s1"] = bool(start_index & 2)
                # Reference next state.
                spec_copy_state = spec.states[start_index]
                nxt = spec_copy_state
                for t in spec.transitions:
                    if t.source != spec_copy_state:
                        continue
                    from repro.synth import parse_expression

                    if parse_expression(t.condition).evaluate(stimulus):
                        nxt = t.target
                        break
                nxt_index = spec.states.index(nxt)
                assert design["ns0"].evaluate(env) == bool(nxt_index & 1), (
                    spec_copy_state, stimulus
                )
                assert design["ns1"].evaluate(env) == bool(nxt_index & 2), (
                    spec_copy_state, stimulus
                )

    def test_output_logic(self):
        design = next_state_expressions(bus_interface_spec())
        # busy asserted in REQ (index 1) and XFER (index 2).
        env = {"s0": True, "s1": False}  # REQ
        assert design["busy"].evaluate(env) is True
        env = {"s0": False, "s1": False}  # IDLE
        assert design["busy"].evaluate(env) is False
        env = {"s0": True, "s1": True}  # DONE
        assert design["ack"].evaluate(env) is True


class TestSynthesis:
    def test_netlist_matches_reference_bus_fsm(self):
        spec = bus_interface_spec()
        fsm = synthesize_fsm(spec, RICH)
        stream = [
            {"req": True, "gnt": False, "err": False, "last": False},
            {"req": False, "gnt": True, "err": False, "last": False},
            {"req": False, "gnt": False, "err": False, "last": False},
            {"req": False, "gnt": False, "err": False, "last": True},
            {"req": False, "gnt": False, "err": False, "last": False},
            {"req": True, "gnt": False, "err": True, "last": False},
        ]
        reference = spec.simulate(stream)
        trace = simulate_sequential(fsm, RICH, stream)
        for cycle, (state, ref_outputs) in enumerate(reference):
            for out, expected in ref_outputs.items():
                assert trace[cycle][out] == expected, (cycle, state, out)

    def test_netlist_matches_reference_toggle(self):
        spec = toggle_spec()
        fsm = synthesize_fsm(spec, RICH)
        stream = [{"en": bool(i % 3 != 0)} for i in range(10)]
        reference = spec.simulate(stream)
        trace = simulate_sequential(fsm, RICH, stream)
        for cycle, (_state, ref_outputs) in enumerate(reference):
            assert trace[cycle]["in_b"] == ref_outputs["in_b"], cycle

    def test_feedback_through_register_only(self):
        fsm = synthesize_fsm(bus_interface_spec(), RICH)
        # Combinational loop exists if registers are ignored...
        assert find_combinational_loop(fsm) is not None
        # ...but the registers legally break it.
        assert find_combinational_loop(
            fsm, RICH.sequential_cell_names()
        ) is None

    def test_fsm_cannot_be_pipelined(self):
        from repro.pipeline import PipelineError, pipeline_module

        fsm = synthesize_fsm(bus_interface_spec(), RICH)
        with pytest.raises(PipelineError, match="already contains"):
            pipeline_module(fsm, RICH, stages=2)

    def test_retiming_bound_by_feedback_cycle(self):
        """The Section 4.1 argument made exact: the state-feedback cycle
        carries one register, so no retiming can beat the next-state
        cone delay."""
        from repro.pipeline import make_retiming_graph, opt_period

        # Abstract the bus FSM: next-state cone delay 10, output cone 4,
        # one register on the feedback loop.
        graph = make_retiming_graph(
            {"ns_logic": 10.0, "state_reg": 0.0, "out_logic": 4.0},
            [
                ("state_reg", "ns_logic", 0),
                ("ns_logic", "state_reg", 1),
                ("state_reg", "out_logic", 0),
            ],
        )
        result = opt_period(graph)
        # Cycle bound: delay 10 / weight 1.
        assert result.period == pytest.approx(10.0)
