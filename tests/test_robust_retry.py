"""Tests for the deterministic retry policy (repro.robust.retry)."""

import pickle

import pytest

from repro.robust.retry import (
    FAILURE_KINDS,
    RetryError,
    RetryPolicy,
    TaskFailure,
    attempt_seed,
    is_task_failure,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.backoff_s == pytest.approx(0.05)
        assert policy.backoff_factor == pytest.approx(2.0)
        assert policy.timeout_s is None
        assert policy.quarantine is True

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(RetryError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule_is_exponential_and_deterministic(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.delay_s(0) == 0.0
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.3)
        assert policy.delay_s(3) == pytest.approx(0.9)
        # Pure function of the attempt number: no jitter.
        assert [policy.delay_s(k) for k in range(4)] == [
            policy.delay_s(k) for k in range(4)
        ]

    def test_zero_backoff_retries_immediately(self):
        policy = RetryPolicy(backoff_s=0.0)
        assert policy.delay_s(1) == 0.0
        assert policy.delay_s(5) == 0.0

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=2)
        assert not policy.exhausted(0)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        assert policy.exhausted(3)

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1, backoff_s=0.0)
        assert policy.exhausted(1)


class TestAttemptSeed:
    def test_attempt_zero_is_identity(self):
        # The bit-identity guarantee: fault-free runs see the base seed.
        for seed in (0, 1, 17, 2**40 + 3):
            assert attempt_seed(seed, 0) == seed

    def test_later_attempts_deterministic_and_distinct(self):
        seeds = [attempt_seed(1234, k) for k in range(5)]
        assert seeds == [attempt_seed(1234, k) for k in range(5)]
        assert len(set(seeds)) == len(seeds)

    def test_different_tasks_diverge(self):
        assert attempt_seed(1, 1) != attempt_seed(2, 1)

    def test_negative_attempt_rejected(self):
        with pytest.raises(RetryError):
            attempt_seed(0, -1)


class TestTaskFailure:
    def _failure(self):
        return TaskFailure(
            index=3, label="demo.sweep", kind="crash",
            error="worker died (exit -9)", attempts=2,
            reports=({"source": "worker-42", "silent_s": 1.5},),
        )

    def test_failure_kinds_cover_recovery_paths(self):
        assert set(FAILURE_KINDS) == {
            "error", "crash", "hang", "stall", "corrupt",
        }

    def test_round_trip(self):
        failure = self._failure()
        rebuilt = TaskFailure.from_dict(failure.to_dict())
        assert rebuilt == failure

    def test_picklable(self):
        failure = self._failure()
        assert pickle.loads(pickle.dumps(failure)) == failure

    def test_str_names_index_attempts_and_kind(self):
        text = str(self._failure())
        assert "task 3" in text
        assert "2 attempt(s)" in text
        assert "[crash]" in text
        assert "worker died" in text

    def test_is_task_failure(self):
        assert is_task_failure(self._failure())
        assert not is_task_failure(None)
        assert not is_task_failure({"kind": "crash"})
        assert not is_task_failure(3.14)
