"""Simultaneous gate and wire sizing (the paper's reference [6]).

Section 6.2 closes with: "Tools for wire sizing along with transistor
sizing may be available in the future (e.g. [6])" -- Chen, Chu & Wong's
Lagrangian-relaxation formulation.  This module implements the tractable
core of that idea on a single driver-wire-load path:

    delay(x, w) = p + R0/x * (Cw(w) + CL)            (gate term)
                + 0.38 * Rw(w) * Cw(w) + Rw(w) * CL  (wire term)

with gate size ``x`` and wire width ``w`` optimised *jointly* under an
area budget, by alternating exact one-dimensional minimisations (the
coordinate-minimisation form of the KKT conditions, which is exact here
because the delay is posynomial and the subproblems are convex in each
variable).  The measurable claim: joint optimisation beats gate-only
then wire-only sequencing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.par.memo import memoized
from repro.sizing.logical_effort import SizingError
from repro.tech.process import ProcessTechnology


@dataclass(frozen=True)
class JointSizingResult:
    """Outcome of a joint gate+wire optimisation.

    Attributes:
        gate_size: driver drive strength (multiples of unit inverter).
        wire_width_um: chosen wire width.
        delay_ps: resulting path delay.
        area_cost: normalised area (gate size + wire metal area units).
        iterations: coordinate rounds to convergence.
    """

    gate_size: float
    wire_width_um: float
    delay_ps: float
    area_cost: float
    iterations: int


@memoized("sizing.joint")
def path_delay_ps(
    tech: ProcessTechnology,
    gate_size: float,
    wire_width_um: float,
    length_um: float,
    load_ff: float,
) -> float:
    """Delay of driver -> wire -> load for given sizes.

    Memoized process-wide: the coordinate-descent width search re-asks
    the same grid points round after round, and the survey flows sweep
    overlapping (length, load) grids.
    """
    if gate_size <= 0:
        raise SizingError("gate size must be positive")
    r0 = tech.unit_drive_resistance_ohm
    rw = tech.interconnect.wire_resistance(length_um, wire_width_um)
    cw = tech.interconnect.wire_capacitance(length_um, wire_width_um)
    parasitic = tech.tau_ps * tech.inverter_parasitic
    gate_term = (r0 / gate_size) * (cw + load_ff) * 1e-3
    wire_term = (0.38 * rw * cw + math.log(2.0) * rw * load_ff) * 1e-3
    return parasitic + gate_term + wire_term


def _best_gate_size(
    tech: ProcessTechnology,
    wire_width_um: float,
    length_um: float,
    load_ff: float,
    area_weight: float,
) -> float:
    """Closed-form optimal driver size under an area penalty.

    Minimising ``R0 (Cw + CL) / x + lambda * x`` gives
    ``x* = sqrt(R0 (Cw + CL) / lambda)``.
    """
    r0 = tech.unit_drive_resistance_ohm
    cw = tech.interconnect.wire_capacitance(length_um, wire_width_um)
    total = (cw + load_ff) * r0 * 1e-3
    return max(1.0, math.sqrt(total / max(area_weight, 1e-12)))


def _best_wire_width(
    tech: ProcessTechnology,
    gate_size: float,
    length_um: float,
    load_ff: float,
    area_weight: float,
    max_width_multiple: float,
) -> float:
    """One-dimensional search for the width minimising delay + area."""
    base = tech.interconnect.min_width_um
    best_w = base
    best_cost = math.inf
    steps = 40
    for i in range(steps + 1):
        width = base * (1.0 + (max_width_multiple - 1.0) * i / steps)
        delay = path_delay_ps(tech, gate_size, width, length_um, load_ff)
        metal = (width - base) * length_um / 1000.0
        cost = delay + area_weight * metal
        if cost < best_cost:
            best_cost = cost
            best_w = width
    return best_w


def joint_size(
    tech: ProcessTechnology,
    length_um: float,
    load_ff: float,
    area_weight: float = 0.5,
    max_width_multiple: float = 6.0,
    max_rounds: int = 25,
    tolerance_ps: float = 0.01,
) -> JointSizingResult:
    """Jointly optimise driver size and wire width for one path.

    Args:
        tech: process technology.
        length_um: wire length.
        load_ff: receiver load.
        area_weight: Lagrange multiplier trading delay (ps) against area
            (driver size units / metal-square-mm units).
        max_width_multiple: width search bound (multiples of min width).
        max_rounds: coordinate-descent round limit.
        tolerance_ps: convergence threshold on delay.
    """
    if not (length_um > 0) or not (load_ff >= 0) or not math.isfinite(
        length_um + load_ff
    ):
        raise SizingError("invalid path parameters")
    if not (area_weight > 0) or not math.isfinite(area_weight):
        raise SizingError("area weight must be positive and finite")
    width = tech.interconnect.min_width_um
    gate = 1.0
    previous = math.inf
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        gate = _best_gate_size(tech, width, length_um, load_ff, area_weight)
        width = _best_wire_width(
            tech, gate, length_um, load_ff, area_weight, max_width_multiple
        )
        delay = path_delay_ps(tech, gate, width, length_um, load_ff)
        if not math.isfinite(delay):
            raise SizingError(
                f"joint sizing accepted a non-finite delay at round "
                f"{rounds} (gate={gate}, width={width})"
            )
        if abs(previous - delay) <= tolerance_ps:
            break
        previous = delay
    delay = path_delay_ps(tech, gate, width, length_um, load_ff)
    metal = (width - tech.interconnect.min_width_um) * length_um / 1000.0
    obs.count("sizing.joint.calls")
    obs.observe("sizing.joint.rounds", rounds)
    obs.observe("sizing.joint.area_cost", gate + metal)
    return JointSizingResult(
        gate_size=gate,
        wire_width_um=width,
        delay_ps=delay,
        area_cost=gate + metal,
        iterations=rounds,
    )


def sequential_size(
    tech: ProcessTechnology,
    length_um: float,
    load_ff: float,
    area_weight: float = 0.5,
    max_width_multiple: float = 6.0,
) -> JointSizingResult:
    """The non-joint baseline: size the gate first (at min-width wire),
    then the wire for that fixed gate.  What separate tools do."""
    min_w = tech.interconnect.min_width_um
    gate = _best_gate_size(tech, min_w, length_um, load_ff, area_weight)
    width = _best_wire_width(
        tech, gate, length_um, load_ff, area_weight, max_width_multiple
    )
    delay = path_delay_ps(tech, gate, width, length_um, load_ff)
    metal = (width - min_w) * length_um / 1000.0
    return JointSizingResult(
        gate_size=gate,
        wire_width_um=width,
        delay_ps=delay,
        area_cost=gate + metal,
        iterations=1,
    )
