"""Live-bus overhead: the telemetry stream must be close to free.

The live event bus rides the same contract as the rest of the
observability layer: off by default, one flag check when off, and cheap
enough when on that leaving a dashboard attached to a real run does not
distort what the run measures.  This benchmark prices both halves: the
raw publish path (lock + sequence + fan-out to one subscriber), and an
end-to-end ASIC flow run with the bus on (JSONL sink attached) against
the same flow with the bus off.

Both wall times land in ``BENCH_paperbench.json`` as
``bench.obs_live.flow_off.s`` / ``bench.obs_live.flow_on.s``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import record_wall, report, row, run_once

from repro.flows import AsicFlowOptions, run_asic_flow
from repro.flows import cache as stage_cache
from repro.obs import live

#: Enough publishes to dwarf timer noise, few enough to stay < 100 ms.
PUBLISH_COUNT = 20_000

OPTIONS = AsicFlowOptions(bits=8, sizing_moves=10)


def _measure(tmp_sink: str):
    # Raw publish throughput with one live subscriber draining nothing.
    bus = live.EventBus()
    subscription = bus.subscribe(maxlen=64)
    start = time.perf_counter()
    for index in range(PUBLISH_COUNT):
        bus.publish("log", "bench", index=index)
    publish_s = time.perf_counter() - start
    rate = PUBLISH_COUNT / publish_s

    # End-to-end flow, bus off vs. on (cold stage cache both times).
    stage_cache.reset()
    start = time.perf_counter()
    off_result = run_asic_flow(OPTIONS)
    off_s = time.perf_counter() - start

    stage_cache.reset()
    live.enable(jsonl=tmp_sink)
    try:
        start = time.perf_counter()
        on_result = run_asic_flow(OPTIONS)
        on_s = time.perf_counter() - start
        events = live.get_bus().stats()["published"]
    finally:
        live.disable()
    assert subscription.dropped > 0  # bounded consumer, no backpressure
    return rate, off_s, on_s, events, off_result, on_result


def test_obs_live_overhead(benchmark, tmp_path):
    sink = str(tmp_path / "events.jsonl")
    rate, off_s, on_s, events, off_result, on_result = run_once(
        benchmark, lambda: _measure(sink)
    )
    record_wall("obs_live.flow_off", off_s)
    record_wall("obs_live.flow_on", on_s)
    overhead = on_s / off_s

    # The stream is a side channel: the flow's answer cannot move.
    off_dict, on_dict = off_result.to_dict(), on_result.to_dict()
    off_dict.pop("stages")
    on_dict.pop("stages")
    assert off_dict == on_dict

    print()
    print(f"publish rate {rate / 1e3:.0f}k events/s; flow "
          f"off {off_s:.3f} s, on {on_s:.3f} s ({overhead:.2f}x), "
          f"{events} events streamed")

    rows = [
        row("bus publish + fan-out throughput", ">= 50k events/s",
            rate / 1e3, 50.0, 1e9, fmt="{:.0f}k/s"),
        row("flow wall-time factor with live bus + sink on", "< 1.5x",
            overhead, 0.0, 1.5, fmt="{:.2f}x"),
    ]
    report("S2  Live telemetry overhead (obs.live)", rows)
    for entry in rows:
        assert entry.ok, entry
