"""TILOS-style greedy sensitivity sizing of mapped netlists.

Fishburn & Dunlop's TILOS (paper reference [7]) sizes transistors by
repeatedly bumping the element with the best delay-improvement-per-area
sensitivity on the critical path.  Our gate-level version does the same
over library drive strengths:

1. run STA, extract the critical path;
2. for every gate on it, trial the next drive variant (or a continuously
   scaled cell when the library has a continuous factory);
3. commit the swap with the best delay gain per added area;
4. repeat until timing is met, no move helps, or the budget runs out.

All timing here runs through an incremental
:class:`~repro.par.session.TimingSession`: one full propagation when the
loop starts, then per-trial and per-commit re-propagation of only the
changed cell's cone.  A committed move's report comes straight out of
the session -- the accepted trial result is reused instead of re-running
a full ``analyze()`` on the netlist the inner loop just evaluated.

Section 6.2: "After layout, transistors can be resized accounting for the
drive strengths required to send signals across the circuit ... can make
a speed difference of 20% or more."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.par.session import ArrayTimingSession, TimingSession
from repro.sizing.logical_effort import SizingError
from repro.sta.clocking import Clock
from repro.sta.engine import TimingReport
from repro.sta.timing_graph import WireParasitics


@dataclass
class SizingResult:
    """Outcome of a sizing run.

    Attributes:
        initial_period_ps: minimum period before sizing.
        final_period_ps: minimum period after sizing.
        moves: number of accepted drive changes.
        area_before_um2: total cell area before.
        area_after_um2: total cell area after.
        report: final timing report.
    """

    initial_period_ps: float
    final_period_ps: float
    moves: int
    area_before_um2: float
    area_after_um2: float
    report: TimingReport

    @property
    def speedup(self) -> float:
        return self.initial_period_ps / self.final_period_ps

    @property
    def area_growth(self) -> float:
        return self.area_after_um2 / self.area_before_um2


def total_area_um2(module: Module, library: CellLibrary) -> float:
    """Total cell area of a mapped netlist."""
    return sum(
        library.get(inst.cell_name).area_um2 for inst in module.iter_instances()
    )


def _next_drive_cell(library: CellLibrary, cell_name: str,
                     continuous_step: float = 1.4) -> str | None:
    """Name of the next-stronger variant of a cell, or None at the top.

    With a continuous factory, generates a cell ``continuous_step`` times
    stronger and registers it in the library so STA can resolve it.
    """
    cell = library.get(cell_name)
    if cell.is_sequential:
        return None
    if library.continuous_factory is not None:
        new_drive = cell.drive * continuous_step
        candidate = library.continuous_factory(cell.base_name, new_drive)
        if candidate.name not in library:
            library.add(candidate)
        return candidate.name
    variants = library.drives_of(cell.base_name)
    stronger = [c for c in variants if c.drive > cell.drive]
    if not stronger:
        return None
    return stronger[0].name


def size_for_speed(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    target_period_ps: float | None = None,
    max_moves: int = 500,
    area_limit: float = 3.0,
    use_array: bool = True,
) -> SizingResult:
    """Greedy sensitivity sizing; mutates ``module`` in place.

    Args:
        module: mapped netlist to size.
        library: its library (grows new cells in continuous mode).
        clock: analysis clock.
        wire: optional wire parasitics (post-layout resizing, Sec. 6.2).
        target_period_ps: stop once this period is met (None = squeeze
            until no move helps).
        max_moves: upper bound on accepted changes.
        area_limit: stop when area grows beyond this multiple.
        use_array: run trials on the compiled array session (identical
            results; the object session remains the oracle).

    Raises:
        SizingError: on invalid budgets.
    """
    if max_moves < 0 or area_limit < 1.0:
        raise SizingError("invalid sizing budget")
    with obs.span("sizing.tilos", budget=max_moves) as sp:
        area_before = total_area_um2(module, library)
        session_cls = ArrayTimingSession if use_array else TimingSession
        session = session_cls(module, library, clock, wire=wire)
        report = session.report()
        initial_period = report.min_period_ps
        area_now = area_before
        moves = 0
        while moves < max_moves:
            if target_period_ps is not None and (
                report.min_period_ps <= target_period_ps
            ):
                break
            if area_now > area_limit * area_before:
                break
            move = _best_move(session, library, report)
            if move is None:
                break
            instance, new_cell, added_area = move
            report = session.commit(instance, new_cell)
            area_now += added_area
            if not math.isfinite(report.min_period_ps):
                raise SizingError(
                    f"sizing diverged to a non-finite period after "
                    f"{moves} moves (swap {instance} -> {new_cell})"
                )
            moves += 1
        area_after = total_area_um2(module, library)
        obs.count("sizing.tilos.calls")
        obs.observe("sizing.tilos.moves", moves)
        obs.observe("sizing.tilos.area_delta_um2", area_after - area_before)
        sp.set(moves=moves, area_delta_um2=area_after - area_before,
               speedup=initial_period / report.min_period_ps)
    return SizingResult(
        initial_period_ps=initial_period,
        final_period_ps=report.min_period_ps,
        moves=moves,
        area_before_um2=area_before,
        area_after_um2=area_after,
        report=report,
    )


def _best_move(
    session: TimingSession,
    library: CellLibrary,
    report: TimingReport,
) -> tuple[str, str, float] | None:
    """Trial upsizing each critical-path gate; best (inst, cell, area).

    Sensitivity is delay improvement per unit added area; moves that do
    not improve the period are rejected.  Each trial is an incremental
    cone re-propagation that the session rolls back afterwards.
    """
    base_period = report.min_period_ps
    best: tuple[float, str, str, float] | None = None
    seen: set[str] = set()
    for step in report.critical_path:
        if step.instance in seen:
            continue
        seen.add(step.instance)
        old_cell = session.module.instance(step.instance).cell_name
        candidate = _next_drive_cell(library, old_cell)
        if candidate is None:
            continue
        added_area = (
            library.get(candidate).area_um2 - library.get(old_cell).area_um2
        )
        obs.count("sizing.tilos.trials")
        trial_period = session.trial(step.instance, candidate)
        gain = base_period - trial_period
        if gain <= 1e-9:
            continue
        sensitivity = gain / max(added_area, 1e-9)
        if best is None or sensitivity > best[0]:
            best = (sensitivity, step.instance, candidate, added_area)
    if best is None:
        return None
    return best[1], best[2], best[3]


def downsize_off_critical(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    slack_margin_ps: float = 0.0,
) -> int:
    """Minimum-power sizing: shrink gates that can afford it.

    Section 6.2: "Sizing transistors minimally to reduce power
    consumption, except on critical paths where they are optimally sized
    to meet speed requirements".  Every gate is trial-downsized to the
    next weaker variant and the change is kept if the minimum period does
    not degrade (beyond the margin).  Returns the number of gates shrunk.
    """
    session = TimingSession(module, library, clock, wire=wire)
    budget = session.min_period_ps() + slack_margin_ps
    shrunk = 0
    for inst_name in sorted(module.instances):
        cell = library.get(module.instance(inst_name).cell_name)
        if cell.is_sequential:
            continue
        variants = library.drives_of(cell.base_name)
        weaker = [c for c in variants if c.drive < cell.drive]
        if not weaker:
            continue
        trial_period = session.trial(inst_name, weaker[-1].name)
        if trial_period <= budget + 1e-9:
            session.commit(inst_name, weaker[-1].name)
            shrunk += 1
    obs.count("sizing.tilos.downsized", shrunk)
    return shrunk
