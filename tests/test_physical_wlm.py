"""Tests for pre-layout wire load models and their placement accuracy."""

import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.physical import place
from repro.physical.geometry import GeometryError
from repro.physical.wlm import (
    WLM_LARGE,
    WLM_MEDIUM,
    WLM_SMALL,
    WireLoadModel,
    compare_to_placement,
    estimate_parasitics,
    select_wlm,
)
from repro.sta import analyze, asic_clock
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(30000.0)


class TestWlm:
    def test_length_grows_with_fanout(self):
        lengths = [WLM_MEDIUM.length_um(f) for f in range(1, 6)]
        assert lengths == sorted(lengths)
        assert WLM_MEDIUM.length_um(0) == 0.0

    def test_model_ladder_ordered(self):
        for fanout in (1, 3, 8):
            assert (
                WLM_SMALL.length_um(fanout)
                < WLM_MEDIUM.length_um(fanout)
                < WLM_LARGE.length_um(fanout)
            )

    def test_selection_by_size(self):
        assert select_wlm(100) is WLM_SMALL
        assert select_wlm(1000) is WLM_MEDIUM
        assert select_wlm(50000) is WLM_LARGE

    def test_validation(self):
        with pytest.raises(GeometryError):
            WireLoadModel("bad", -1.0, 1.0)
        with pytest.raises(GeometryError):
            WLM_SMALL.length_um(-1)
        with pytest.raises(GeometryError):
            select_wlm(-5)


class TestEstimates:
    def test_estimates_slow_timing(self):
        module = kogge_stone_adder(8, RICH)
        bare = analyze(module, RICH, CLK).min_period_ps
        wire = estimate_parasitics(module, CMOS250_ASIC)
        loaded = analyze(module, RICH, CLK, wire=wire).min_period_ps
        assert loaded > bare

    def test_estimates_cover_driven_nets(self):
        module = kogge_stone_adder(8, RICH)
        wire = estimate_parasitics(module, CMOS250_ASIC, WLM_MEDIUM)
        assert len(wire.extra_cap_ff) > module.instance_count() / 2
        assert all(v >= 0 for v in wire.extra_cap_ff.values())

    def test_accuracy_against_placement(self):
        module = kogge_stone_adder(8, RICH)
        placement = place(module, RICH, quality="careful", seed=5)
        accuracy = compare_to_placement(module, placement, WLM_SMALL)
        assert accuracy.nets_compared > 10
        # WLMs are blunt: the spread between best and worst net estimate
        # spans well over an order of magnitude -- the Section 6.2 point
        # that pre-layout loads "will differ from that in the final
        # layout".
        assert accuracy.worst_overestimate / accuracy.worst_underestimate > 3.0

    def test_mean_ratio_order_of_magnitude(self):
        module = kogge_stone_adder(8, RICH)
        placement = place(module, RICH, quality="careful", seed=5)
        accuracy = compare_to_placement(module, placement, WLM_SMALL)
        assert 0.2 < accuracy.mean_ratio < 20.0
