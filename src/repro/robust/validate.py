"""Pre-flight lint passes over netlists and cell libraries.

Every check returns a structured :class:`Diagnostic` instead of raising,
so callers can collect the full damage report in one pass, decide on a
severity policy, and surface the records through ``FlowResult.to_dict``
and the CLI's ``--json`` output.  :func:`require_clean` converts a
report with errors into a single typed :class:`ValidationError` for
callers that want fail-fast semantics.

The lint passes cover the malformed-input classes the fault-injection
harness (:mod:`repro.robust.faults`) produces: combinational loops,
undriven and floating nets, fanout/load-cap violations, non-monotone
delay tables, and NaN or negative electrical parameters.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cells.cell import CellError
from repro.cells.delay import DelayModelError, NLDMArc
from repro.cells.library import CellLibrary
from repro.netlist.graph import CombinationalLoopError, topological_order
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.sta.timing_graph import TimingGraph


class ValidationError(ValueError):
    """Raised by :func:`require_clean` when errors were diagnosed."""


class Severity(enum.IntEnum):
    """How bad a diagnostic is; ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding from a lint pass or a stage failure.

    Attributes:
        code: stable dotted identifier, e.g. ``"netlist.undriven"``.
        severity: how bad it is.
        message: human-readable description of the finding.
        subject: the net / instance / cell / stage the finding is about.
        hint: suggested fix, when one is known.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    hint: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form (severity collapses to its label)."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "subject": self.subject,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        """Rebuild a diagnostic from its :meth:`to_dict` form."""
        label = str(payload.get("severity", "info")).upper()
        try:
            severity = Severity[label]
        except KeyError:
            severity = Severity.INFO
        return cls(
            code=str(payload.get("code", "")),
            severity=severity,
            message=str(payload.get("message", "")),
            subject=str(payload.get("subject", "")),
            hint=str(payload.get("hint", "")),
        )

    def __str__(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.label}:{self.code}{subject}: {self.message}"


#: (load_ff, slew_ps) probe points for delay-model sanity checks.
_PROBE_POINTS = ((0.0, 10.0), (5.0, 20.0), (20.0, 40.0))


def validate_module(
    module: Module,
    library: CellLibrary | None = None,
    max_fanout: int | None = None,
) -> list[Diagnostic]:
    """Lint a netlist; returns diagnostics, never raises.

    Checks: undriven nets with sinks, floating (sink-less) nets,
    combinational loops, unknown cells, and -- when a library is given --
    per-net load against the driving cell's max-capacitance limit and an
    optional structural fanout cap.
    """
    diags: list[Diagnostic] = []

    for name, net in module.nets.items():
        if net.driver is None and net.sinks:
            diags.append(Diagnostic(
                code="netlist.undriven",
                severity=Severity.ERROR,
                message=f"net {name!r} has {len(net.sinks)} sink(s) but "
                        "no driver",
                subject=name,
                hint="connect a driver or remove the dangling sinks",
            ))
        elif net.driver is not None and not net.sinks:
            if name in module.ports:
                continue
            diags.append(Diagnostic(
                code="netlist.floating",
                severity=Severity.WARNING,
                message=f"net {name!r} drives nothing",
                subject=name,
                hint="dead logic; run Module.prune_dangling_nets() after "
                     "removing its driver",
            ))

    seq_names: set[str] = set()
    unknown_cells = False
    if library is not None:
        for inst in module.iter_instances():
            if inst.cell_name not in library:
                unknown_cells = True
                diags.append(Diagnostic(
                    code="netlist.unknown_cell",
                    severity=Severity.ERROR,
                    message=f"instance {inst.name!r} references cell "
                            f"{inst.cell_name!r} absent from library "
                            f"{library.name!r}",
                    subject=inst.name,
                    hint="re-map the netlist or add the cell to the "
                         "library",
                ))
        seq_names = library.sequential_cell_names()

    try:
        topological_order(module, seq_names)
    except CombinationalLoopError as exc:
        diags.append(Diagnostic(
            code="netlist.combinational_loop",
            severity=Severity.ERROR,
            message=str(exc),
            subject=module.name,
            hint="break the cycle with a register or re-synthesise the "
                 "cone",
        ))

    if library is not None and not unknown_cells:
        graph = TimingGraph(module, library)
        for inst in module.iter_instances():
            cell = graph.cell_of(inst.name)
            for net in inst.outputs.values():
                sinks = module.sinks_of(net)
                load = graph.net_load_ff(net)
                if cell.load_violated(load):
                    diags.append(Diagnostic(
                        code="netlist.load_cap",
                        severity=Severity.WARNING,
                        message=f"net {net!r} loads {inst.cell_name} "
                                f"driver {inst.name!r} with "
                                f"{load:.1f} fF, above its "
                                f"{cell.max_load_ff:.1f} fF limit",
                        subject=net,
                        hint="insert buffers (buffer_high_fanout) or "
                             "upsize the driver",
                    ))
                if max_fanout is not None and len(sinks) > max_fanout:
                    diags.append(Diagnostic(
                        code="netlist.fanout",
                        severity=Severity.WARNING,
                        message=f"net {net!r} fans out to {len(sinks)} "
                                f"sinks (cap {max_fanout})",
                        subject=net,
                        hint="buffer the net or clone the driver",
                    ))
    return diags


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


def validate_library(library: CellLibrary) -> list[Diagnostic]:
    """Lint a cell library; returns diagnostics, never raises.

    Checks every timing arc for NaN/Inf and negative delays (probed at a
    few operating points, so both linear and table models are covered),
    NLDM tables for non-monotone delay versus load, and sequential
    timing records for non-finite parameters.  Construction-time
    validation cannot catch these: NaN compares false against every
    bound, so a corrupted table passes ``__post_init__`` checks.
    """
    diags: list[Diagnostic] = []
    for cell in library:
        if not _finite(cell.area_um2, cell.max_load_ff, cell.drive):
            diags.append(Diagnostic(
                code="library.nan_parameter",
                severity=Severity.ERROR,
                message=f"cell {cell.name!r} has non-finite "
                        "area/load/drive parameters",
                subject=cell.name,
                hint="re-characterise the cell",
            ))
        for pin_name, pin in cell.inputs.items():
            if not _finite(pin.cap_ff, pin.logical_effort):
                diags.append(Diagnostic(
                    code="library.nan_parameter",
                    severity=Severity.ERROR,
                    message=f"pin {cell.name}.{pin_name} has non-finite "
                            "capacitance or logical effort",
                    subject=cell.name,
                    hint="re-characterise the cell",
                ))
        if cell.sequential is not None:
            seq = cell.sequential
            if not _finite(seq.setup_ps, seq.hold_ps, seq.clk_to_q_ps):
                diags.append(Diagnostic(
                    code="library.nan_parameter",
                    severity=Severity.ERROR,
                    message=f"cell {cell.name!r} has non-finite "
                            "sequential timing",
                    subject=cell.name,
                    hint="re-characterise the cell",
                ))
        for pin_name, arc in cell.arcs.items():
            diags.extend(_validate_arc(cell.name, pin_name, arc))
    return diags


def _validate_arc(cell_name: str, pin_name: str, arc) -> list[Diagnostic]:
    """Sanity-check one timing arc (probe-based, model-agnostic)."""
    diags: list[Diagnostic] = []
    subject = f"{cell_name}.{pin_name}"
    for load, slew in _PROBE_POINTS:
        try:
            delay = arc.delay_ps(load, slew)
            out_slew = arc.output_slew_ps(load, slew)
        except (DelayModelError, CellError) as exc:
            diags.append(Diagnostic(
                code="library.arc_query_failed",
                severity=Severity.ERROR,
                message=f"arc {subject} rejected probe "
                        f"(load={load} fF, slew={slew} ps): {exc}",
                subject=subject,
            ))
            break
        if not _finite(delay, out_slew):
            diags.append(Diagnostic(
                code="library.nan_delay",
                severity=Severity.ERROR,
                message=f"arc {subject} yields non-finite delay/slew at "
                        f"load={load} fF, slew={slew} ps",
                subject=subject,
                hint="scrub the delay table for NaN/Inf entries",
            ))
            break
        if delay < 0.0 or out_slew < 0.0:
            diags.append(Diagnostic(
                code="library.negative_delay",
                severity=Severity.ERROR,
                message=f"arc {subject} yields negative delay/slew at "
                        f"load={load} fF, slew={slew} ps",
                subject=subject,
                hint="delay tables must be non-negative everywhere",
            ))
            break
    if isinstance(arc, NLDMArc):
        diags.extend(_validate_nldm_monotone(subject, arc))
    return diags


def _validate_nldm_monotone(subject: str, arc: NLDMArc) -> list[Diagnostic]:
    """Delay must not *decrease* as load grows, along every slew row."""
    diags: list[Diagnostic] = []
    for i, row in enumerate(arc.delay_table_ps):
        drops = [
            j for j, (a, b) in enumerate(zip(row, row[1:]))
            if b < a - 1e-9
        ]
        if drops:
            diags.append(Diagnostic(
                code="library.non_monotone",
                severity=Severity.ERROR,
                message=f"arc {subject} delay table row {i} (slew "
                        f"{arc.slew_axis_ps[i]:.0f} ps) decreases with "
                        f"load at column(s) {drops}",
                subject=subject,
                hint="a delay table must be non-decreasing in load; "
                     "re-characterise or clamp the table",
            ))
            break
    return diags


def preflight(
    module: Module,
    library: CellLibrary,
    max_fanout: int | None = None,
) -> list[Diagnostic]:
    """Full pre-flight lint: library first, then the netlist against it."""
    return validate_library(library) + validate_module(
        module, library, max_fanout=max_fanout
    )


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    """True if any diagnostic is an error."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def require_clean(diagnostics: list[Diagnostic]) -> None:
    """Raise :class:`ValidationError` when the report contains errors."""
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        listing = "; ".join(str(d) for d in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise ValidationError(
            f"{len(errors)} validation error(s): {listing}{more}"
        )
