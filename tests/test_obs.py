"""Tests for the observability subsystem (repro.obs)."""

import json
import threading

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    ObsError,
    TickClock,
    Tracer,
    metrics_to_flat,
    trace_to_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_global_obs():
    """Every test starts and ends with the global layer off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTracer:
    def test_nested_spans_depth_and_parent(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.depth == 0
        assert outer.parent is None
        assert inner.depth == 1
        assert inner.parent == outer.index
        assert len(tracer.finished()) == 2

    def test_self_time_excludes_children(self):
        clock = TickClock(tick=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # outer: start=0 end=3 (4 ticks consumed); inner: start=1 end=2.
        assert inner.duration_s == pytest.approx(1.0)
        assert outer.duration_s == pytest.approx(3.0)
        assert outer.self_s == pytest.approx(2.0)

    def test_attributes_attach(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("stage", cells=10) as sp:
            sp.set(period_ps=123.4)
        span = tracer.finished()[0]
        assert span.attributes == {"cells": 10, "period_ps": 123.4}

    def test_call_counts_and_aggregate(self):
        tracer = Tracer(clock=TickClock())
        for _ in range(3):
            with tracer.span("hot"):
                pass
        with tracer.span("cold"):
            pass
        assert tracer.call_counts() == {"hot": 3, "cold": 1}
        stats = {s.name: s for s in tracer.aggregate()}
        assert stats["hot"].count == 3
        assert stats["hot"].mean_s == pytest.approx(1.0)

    def test_wrap_decorator(self):
        tracer = Tracer(clock=TickClock())

        @tracer.wrap("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert tracer.call_counts() == {"work": 1}

    def test_empty_name_rejected(self):
        tracer = Tracer()
        with pytest.raises(ObsError):
            tracer.span("")

    def test_threads_trace_independently(self):
        tracer = Tracer()
        errors = []

        def flow(name):
            try:
                with tracer.span(name):
                    with tracer.span(name + ".inner"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=flow, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.finished()
        assert len(spans) == 8
        # Each inner span's parent is its own thread's outer span.
        by_index = {s.index: s for s in spans}
        for span in spans:
            if span.name.endswith(".inner"):
                assert by_index[span.parent].name == span.name[:-6]


class TestMetrics:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("calls")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == pytest.approx(3.0)

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.counter("calls").inc(-1.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("speed")
        gauge.set(1.0)
        gauge.set(5.0)
        assert gauge.value() == pytest.approx(5.0)

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        counter = reg.counter("calls")
        counter.inc(1.0, stage="map")
        counter.inc(4.0, stage="place")
        assert counter.value(stage="map") == pytest.approx(1.0)
        assert counter.value(stage="place") == pytest.approx(4.0)
        assert counter.value() == pytest.approx(0.0)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("ms")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.count() == 100
        assert hist.mean() == pytest.approx(50.5)
        assert hist.percentile(0) == pytest.approx(1.0)
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)
        assert hist.percentile(100) == pytest.approx(100.0)

    def test_histogram_percentile_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("ms")
        hist.observe(1.0)
        with pytest.raises(ObsError):
            hist.percentile(101)

    def test_histogram_percentile_empty_is_nan_with_warning(self):
        import math

        reg = MetricsRegistry()
        hist = reg.histogram("ms")
        with pytest.warns(RuntimeWarning, match="no observations"):
            value = hist.percentile(50)
        assert math.isnan(value)
        # An unseen label series is just as empty.
        hist.observe(1.0)
        with pytest.warns(RuntimeWarning):
            assert math.isnan(hist.percentile(50, missing="label"))

    def test_histogram_percentile_single_sample(self):
        reg = MetricsRegistry()
        hist = reg.histogram("ms")
        hist.observe(7.5)
        assert hist.percentile(0) == 7.5
        assert hist.percentile(50) == 7.5
        assert hist.percentile(100) == 7.5

    def test_label_cardinality_bounded(self):
        reg = MetricsRegistry(max_series=4)
        counter = reg.counter("calls")
        for i in range(4):
            counter.inc(1.0, key=str(i))
        with pytest.raises(ObsError):
            counter.inc(1.0, key="overflow")
        hist = reg.histogram("ms")
        for i in range(4):
            hist.observe(1.0, key=str(i))
        with pytest.raises(ObsError):
            hist.observe(1.0, key="overflow")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError):
            reg.gauge("x")

    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestExport:
    def _traced_run(self):
        tracer = Tracer(clock=TickClock())
        reg = MetricsRegistry()
        with tracer.span("flow", bits=8):
            with tracer.span("flow.map") as sp:
                sp.set(cells=42)
            with tracer.span("flow.sta"):
                reg.histogram("sta.ms").observe(1.5)
        reg.counter("sta.calls").inc(3.0, stage="size")
        reg.gauge("samples_per_sec").set(1e6)
        return tracer, reg

    def test_jsonl_valid_and_deterministic(self):
        first = trace_to_jsonl(self._traced_run()[0])
        second = trace_to_jsonl(self._traced_run()[0])
        assert first == second  # fake clock => byte-identical
        lines = first.strip().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == [
            "flow", "flow.map", "flow.sta",
        ]
        assert records[1]["attrs"] == {"cells": 42}
        assert records[1]["parent"] == records[0]["index"]

    def test_metrics_flat_shape(self):
        _, reg = self._traced_run()
        flat = metrics_to_flat(reg)
        assert flat["sta.calls{stage=size}"] == pytest.approx(3.0)
        assert flat["samples_per_sec"] == pytest.approx(1e6)
        assert flat["sta.ms.count"] == 1
        assert flat["sta.ms.p50"] == pytest.approx(1.5)
        assert metrics_to_flat(self._traced_run()[1]) == flat

    def test_write_trace_and_metrics(self, tmp_path):
        tracer, reg = self._traced_run()
        trace_file = tmp_path / "t.jsonl"
        metrics_file = tmp_path / "m.json"
        assert obs.write_trace(tracer, str(trace_file)) == 3
        assert obs.write_metrics(reg, str(metrics_file)) > 0
        for line in trace_file.read_text().strip().splitlines():
            json.loads(line)
        json.loads(metrics_file.read_text())

    def test_report_renders_spans_and_metrics(self):
        tracer, reg = self._traced_run()
        text = obs.report(tracer, reg)
        assert "flow.map" in text
        assert "sta.calls{stage=size}" in text

    def test_empty_report(self):
        text = obs.report(Tracer(), MetricsRegistry())
        assert "no observability data" in text

    def test_chrome_trace_shape(self):
        tracer, _ = self._traced_run()
        doc = json.loads(obs.trace_to_chrome(tracer))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        assert [e["name"] for e in complete] == [
            "flow", "flow.map", "flow.sta",
        ]
        # TickClock ticks once per start/stop: flow spans ticks 0..5.
        flow = complete[0]
        assert flow["ts"] == 0
        assert flow["dur"] == pytest.approx(5e6)  # 5 s in microseconds
        assert flow["args"]["bits"] == 8
        # Self-describing args: depth and exclusive self time ride
        # every event (flow holds 5 s total, children 2 s).
        assert flow["args"]["depth"] == 0
        assert flow["args"]["self_ms"] == pytest.approx(3e3)
        assert all(e["pid"] == 0 for e in complete)
        meta_names = {e["name"] for e in meta}
        assert {"process_name", "process_sort_index", "thread_name",
                "thread_sort_index"} <= meta_names
        assert meta[0]["args"] == {"name": "repro-gap"}

    def test_chrome_trace_deterministic_and_written(self, tmp_path):
        first = obs.trace_to_chrome(self._traced_run()[0])
        second = obs.trace_to_chrome(self._traced_run()[0])
        assert first == second
        out = tmp_path / "trace.json"
        assert obs.write_chrome_trace(self._traced_run()[0],
                                      str(out)) == 3
        json.loads(out.read_text())

    def test_prometheus_exposition(self):
        _, reg = self._traced_run()
        text = obs.metrics_to_prom(reg)
        assert '# TYPE sta_calls_total counter' in text
        assert 'sta_calls_total{stage="size"} 3.0' in text
        assert "# TYPE samples_per_sec gauge" in text
        assert "samples_per_sec 1000000.0" in text
        assert "# TYPE sta_ms histogram" in text
        assert 'sta_ms_bucket{le="+Inf"} 1' in text
        assert "sta_ms_sum 1.5" in text
        assert "sta_ms_count 1" in text
        # Exposition format: every line is a comment or name[{..}] value.
        for line in text.strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2

    def test_prometheus_label_escaping(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("odd.name").inc(1.0, path='a"b\\c', note="x\ny")
        text = obs.metrics_to_prom(reg)
        assert 'odd_name_total{note="x\\ny",path="a\\"b\\\\c"} 1.0' \
            in text
        out = tmp_path / "metrics.prom"
        assert obs.write_prom(reg, str(out)) == len(
            out.read_text().splitlines()
        )


class TestGlobalSwitch:
    def test_disabled_by_default_fast_path(self):
        assert not obs.enabled()
        handle = obs.span("anything", cells=1)
        assert handle is obs.NOOP_SPAN  # shared singleton, nothing allocated
        with handle as sp:
            sp.set(more=2)
        obs.count("calls")
        obs.observe("ms", 1.0)
        obs.gauge("speed", 2.0)
        assert obs.get_tracer().finished() == []
        assert obs.get_metrics().all_metrics() == []

    def test_enable_records_and_disable_stops(self):
        obs.enable()
        with obs.span("stage"):
            obs.count("calls")
        assert obs.get_tracer().call_counts() == {"stage": 1}
        obs.disable()
        with obs.span("stage"):
            obs.count("calls")
        assert obs.get_tracer().call_counts() == {"stage": 1}
        assert obs.get_metrics().counter("calls").value() == 1.0

    def test_enable_fresh_resets(self):
        obs.enable()
        with obs.span("old"):
            pass
        obs.enable()  # fresh=True default
        assert obs.get_tracer().finished() == []

    def test_traced_decorator_checks_at_call_time(self):
        @obs.traced("worker")
        def worker():
            return 7

        assert worker() == 7
        assert obs.get_tracer().finished() == []
        obs.enable()
        assert worker() == 7
        assert obs.get_tracer().call_counts() == {"worker": 1}

    def test_enable_with_fake_clock(self):
        obs.enable(clock=TickClock())
        with obs.span("a"):
            pass
        span = obs.get_tracer().finished()[0]
        assert span.start_s == 0.0
        assert span.end_s == 1.0


class TestInstrumentedHotPaths:
    def test_flow_emits_stage_spans_and_sta_metrics(self):
        from repro.flows import AsicFlowOptions, run_asic_flow

        obs.enable()
        run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=2))
        counts = obs.get_tracer().call_counts()
        for stage in ("map", "place", "cts", "size", "sta", "quote"):
            assert counts[f"flow.asic.{stage}"] == 1
        assert counts["flow.asic"] == 1
        assert counts["sizing.tilos"] >= 1
        reg = obs.get_metrics()
        assert reg.counter("sta.array.analyze.calls").value() > 0
        assert reg.counter("sta.solve_min_period.calls").value() >= 1
        assert reg.histogram("sta.solve_min_period.iterations").count() >= 1
        assert reg.counter("variation.montecarlo.samples").value() == 4000
        assert reg.histogram("sizing.tilos.moves").count() == 1

    def test_flow_records_nothing_when_disabled(self):
        from repro.flows import AsicFlowOptions, run_asic_flow

        run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=1))
        assert obs.get_tracer().finished() == []
        assert obs.get_metrics().all_metrics() == []

    def test_joint_sizing_metrics(self):
        from repro.sizing.joint import joint_size
        from repro.tech import CMOS250_ASIC

        obs.enable()
        joint_size(CMOS250_ASIC, length_um=500.0, load_ff=20.0)
        reg = obs.get_metrics()
        assert reg.counter("sizing.joint.calls").value() == 1
        assert reg.histogram("sizing.joint.rounds").count() == 1
