"""E12 -- Sections 4.2 / 7.2: predefined datapath macro cells.

"Fast datapath designs, such as carry-lookahead and carry-select adders
... do exist in pre-designed libraries, but are not automatically invoked
in register-transfer level logic synthesis ... Use of these predefined
macro cells for an ASIC can significantly improve the resulting design,
by reducing the number of logic levels for implementing complex logic
functions and reducing the area taken up by logic."

Measured: naive RTL-shaped structures vs every macro in the registry, at
the netlist level and through the full ASIC flow.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.flows import AsicFlowOptions, run_asic_flow
from repro.netlist import logic_depth
from repro.sta import analyze, asic_clock
from repro.synth import expand_macro, list_macros
from repro.tech import CMOS250_ASIC

BITS = 16


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)
    adders = {}
    for name in ("adder_ripple", "adder_cla", "adder_carry_select",
                 "adder_kogge_stone"):
        module = expand_macro(name, BITS, library)
        timing = analyze(module, library, clock)
        adders[name] = (
            logic_depth(module),
            timing.min_period_ps / CMOS250_ASIC.fo4_delay_ps,
        )
    mult_ratio = None
    array = expand_macro("multiplier_array", 6, library)
    wallace = expand_macro("multiplier_wallace", 6, library)
    t_array = analyze(array, library, clock).min_period_ps
    t_wallace = analyze(wallace, library, clock).min_period_ps
    mult_ratio = t_array / t_wallace

    naive_flow = run_asic_flow(
        AsicFlowOptions(bits=8, workload="alu", sizing_moves=15)
    )
    macro_flow = run_asic_flow(
        AsicFlowOptions(bits=8, workload="alu_macro", sizing_moves=15)
    )
    return adders, mult_ratio, naive_flow, macro_flow


def test_e12_macros(benchmark):
    adders, mult_ratio, naive_flow, macro_flow = run_once(benchmark, _measure)

    print()
    print(f"{'adder':<22s} {'depth':>6s} {'FO4':>7s}")
    for name, (depth, fo4) in adders.items():
        print(f"{name:<22s} {depth:>6d} {fo4:>7.1f}")

    ripple_fo4 = adders["adder_ripple"][1]
    ks_fo4 = adders["adder_kogge_stone"][1]
    flow_gain = (
        macro_flow.typical_frequency_mhz / naive_flow.typical_frequency_mhz
    )

    rows = [
        row("Kogge-Stone vs ripple (16b, FO4)", "significantly fewer levels",
            ripple_fo4 / ks_fo4, 1.8, 8.0),
        row("CLA vs ripple (16b, FO4)", "fewer levels",
            ripple_fo4 / adders["adder_cla"][1], 1.3, 8.0),
        row("carry-select vs ripple (16b, FO4)", "fewer levels",
            ripple_fo4 / adders["adder_carry_select"][1], 1.2, 8.0),
        row("Wallace vs array multiplier (6b)", "fewer levels",
            mult_ratio, 1.1, 5.0),
        row("macro ALU through full ASIC flow", "significant improvement",
            flow_gain, 1.2, 5.0),
        row("macro registry size", ">= 11 macros",
            float(len(list_macros())), 11.0, 100.0, fmt="{:.0f}"),
    ]
    report("E12 Predefined datapath macros (Sections 4.2/7.2)", rows)
    for entry in rows:
        assert entry.ok, entry
