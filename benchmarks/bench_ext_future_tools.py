"""Extension bench -- the paper's "what can we do about it" program.

Each section of the paper closes with remedies; this bench measures the
ones implemented as extensions:

* resynthesis passes (Section 6.2, refs [17]/[8]);
* delay-balanced pipeline cuts (Section 4.1's custom stage balancing);
* skew-tolerant domino clocking (reference [15]);
* simultaneous gate+wire sizing (Section 6.2's "future" tools, ref [6]);
* down-binning / over-clocking headroom (Section 8.1.1);
* the gap roadmap (Section 9's optimist-vs-pessimist reading).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.circuit import skew_tolerance_speedup
from repro.core import asymptotic_gap, project_gap
from repro.datapath import alu
from repro.pipeline import pipeline_module, pipeline_module_balanced
from repro.sizing import joint_size, sequential_size
from repro.sta import analyze, asic_clock, solve_min_period
from repro.synth import resynthesize
from repro.tech import CMOS250_ASIC
from repro.variation import (
    NEW_PROCESS,
    overclocking_headroom,
    sample_chip_speeds,
    ship_against_demand,
)

BITS = 8


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)

    # Resynthesis on a mapped ALU.
    module = alu(BITS, library, fast_adder=False)
    before = analyze(module, library, clock)
    arrivals = {
        s.instance: s.arrival_ps for s in before.critical_path
    }
    net_arrivals = {}
    for inst in module.iter_instances():
        for net in inst.outputs.values():
            net_arrivals[net] = arrivals.get(inst.name, 0.0)
    resyn_report = resynthesize(module, library, arrivals=net_arrivals)
    after = analyze(module, library, clock)

    # Balanced vs unit-level pipeline cuts.
    unit = pipeline_module(alu(BITS, library, fast_adder=False), library, 4)
    balanced = pipeline_module_balanced(
        alu(BITS, library, fast_adder=False), library, 4
    )
    p_unit = solve_min_period(unit.module, library, clock).min_period_ps
    p_balanced = solve_min_period(
        balanced.module, library, clock
    ).min_period_ps

    # Joint gate+wire sizing.
    joint = joint_size(CMOS250_ASIC, 5000.0, 20.0)
    seq = sequential_size(CMOS250_ASIC, 5000.0, 20.0)

    # Down-binning.
    dist = sample_chip_speeds(400.0, NEW_PROCESS, count=12000, seed=23)
    edges = [dist.percentile(5), dist.percentile(40), dist.percentile(80)]
    binned = ship_against_demand(dist, edges, [0.6, 0.25, 0.1])
    headroom = overclocking_headroom(dist, dist.percentile(5))

    return (
        resyn_report, before.min_period_ps, after.min_period_ps,
        p_unit, p_balanced, joint, seq, binned, headroom,
    )


def test_ext_future_tools(benchmark):
    (resyn, before_ps, after_ps, p_unit, p_balanced, joint, seq,
     binned, headroom) = run_once(benchmark, _measure)

    points = project_gap(generations=4, initial_gap=8.0)

    rows = [
        row("resynthesis structural changes", "netlist restructuring",
            float(resyn.total_changes), 1.0, 1e4, fmt="{:.0f} edits"),
        row("resynthesis never slows the design", "speed-neutral or better",
            before_ps / after_ps, 0.999, 2.0),
        row("balanced vs unit pipeline cuts", "custom balancing wins",
            p_unit / p_balanced, 0.98, 1.6),
        row("joint gate+wire vs sequential sizing", "joint wins (ref [6])",
            seq.delay_ps / joint.delay_ps, 1.0, 2.0),
        row("skew-tolerant domino recovers overhead", "hides latch+skew",
            skew_tolerance_speedup(10.0), 1.25, 1.55),
        row("down-binned share under slow demand", "down-binning happens",
            100 * binned.down_binned_fraction, 3.0, 60.0, fmt="{:.1f}%"),
        row("median over-clocking headroom", "'ease of over-clocking'",
            100 * (headroom - 1.0), 5.0, 40.0, fmt="{:.1f}%"),
        row("gap after 4 generations of better tools", "remains large",
            points[-1].gap, 3.0, 8.0),
        row("asymptotic gap (custom-only factors)", "pipelining+domino",
            asymptotic_gap(8.0), 3.0, 5.0),
    ]
    report("EXT  'What can we do about it': the paper's remedies", rows)
    for entry in rows:
        assert entry.ok, entry
