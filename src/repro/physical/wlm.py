"""Pre-layout wire load models (WLMs).

Section 6.2: "Initial logic synthesis may choose drive strengths using
estimations for wire lengths and the net load a gate has to drive, but
this will differ from that in the final layout.  After layout,
transistors can be resized accounting for the drive strengths required
to send signals across the circuit."

A WLM is the pre-layout estimator: wire capacitance as a function of
fanout (and design size), the way synthesis libraries shipped them.  The
interesting measurable is the *mismatch* between WLM estimates and the
placed reality -- the reason post-layout resizing (bench E8) exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.physical.geometry import GeometryError
from repro.physical.placement import Placement
from repro.sta.timing_graph import WireParasitics
from repro.tech.process import ProcessTechnology


@dataclass(frozen=True)
class WireLoadModel:
    """Fanout-indexed wire length estimator.

    Attributes:
        name: model name (synthesis libraries shipped small/medium/large).
        base_length_um: estimated wire length at fanout 1.
        length_per_fanout_um: incremental length per extra sink.
        design_area_scale: multiplier applied for bigger designs (bigger
            die, longer average wires).
    """

    name: str
    base_length_um: float
    length_per_fanout_um: float
    design_area_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.base_length_um < 0 or self.length_per_fanout_um < 0:
            raise GeometryError("WLM lengths must be non-negative")
        if self.design_area_scale <= 0:
            raise GeometryError("area scale must be positive")

    def length_um(self, fanout: int) -> float:
        """Estimated routed length of a net with the given sink count."""
        if fanout < 0:
            raise GeometryError("fanout cannot be negative")
        if fanout == 0:
            return 0.0
        return self.design_area_scale * (
            self.base_length_um
            + self.length_per_fanout_um * (fanout - 1)
        )


#: The classic synthesis-library trio.
WLM_SMALL = WireLoadModel("small", base_length_um=40.0,
                          length_per_fanout_um=25.0)
WLM_MEDIUM = WireLoadModel("medium", base_length_um=80.0,
                           length_per_fanout_um=50.0)
WLM_LARGE = WireLoadModel("large", base_length_um=160.0,
                          length_per_fanout_um=100.0)


def select_wlm(gate_count: int) -> WireLoadModel:
    """Pick a WLM by design size, the way synthesis scripts did."""
    if gate_count < 0:
        raise GeometryError("gate count cannot be negative")
    if gate_count < 500:
        return WLM_SMALL
    if gate_count < 5000:
        return WLM_MEDIUM
    return WLM_LARGE


def estimate_parasitics(
    module: Module,
    tech: ProcessTechnology,
    model: WireLoadModel | None = None,
) -> WireParasitics:
    """Pre-layout wire parasitics for every net from a WLM."""
    wlm = model or select_wlm(module.instance_count())
    extra_cap: dict[str, float] = {}
    extra_delay: dict[str, float] = {}
    for name, net in module.nets.items():
        fanout = sum(1 for s in net.sinks if not is_port_ref(s))
        length = wlm.length_um(fanout)
        if length <= 0:
            continue
        cw = tech.interconnect.wire_capacitance(length)
        rw = tech.interconnect.wire_resistance(length)
        extra_cap[name] = cw
        extra_delay[name] = 0.38 * rw * cw * 1e-3
    return WireParasitics(extra_cap_ff=extra_cap, extra_delay_ps=extra_delay)


@dataclass(frozen=True)
class WlmAccuracy:
    """WLM-vs-placement comparison for one design.

    Attributes:
        mean_ratio: mean of (estimated length / placed length) over nets
            with nonzero placed length.
        worst_underestimate: smallest ratio (nets the WLM flattered).
        worst_overestimate: largest ratio.
        nets_compared: sample size.
    """

    mean_ratio: float
    worst_underestimate: float
    worst_overestimate: float
    nets_compared: int


def compare_to_placement(
    module: Module,
    placement: Placement,
    model: WireLoadModel | None = None,
) -> WlmAccuracy:
    """Quantify WLM error against placed wire lengths."""
    wlm = model or select_wlm(module.instance_count())
    ratios = []
    for name, net in module.nets.items():
        fanout = sum(1 for s in net.sinks if not is_port_ref(s))
        placed = placement.net_length_um(name)
        if placed <= 1.0 or fanout == 0:
            continue
        ratios.append(wlm.length_um(fanout) / placed)
    if not ratios:
        raise GeometryError("no comparable nets")
    return WlmAccuracy(
        mean_ratio=sum(ratios) / len(ratios),
        worst_underestimate=min(ratios),
        worst_overestimate=max(ratios),
        nets_compared=len(ratios),
    )
