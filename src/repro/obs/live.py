"""Live telemetry: the streaming event bus and its consumers.

Where :mod:`repro.obs.trace` answers "what happened" after a run, this
module answers "what is happening" during one.  An :class:`EventBus`
carries :class:`~repro.obs.events.Event` records from producers --
the tracer's span hooks, the metrics registry, the flow engine's stage
callbacks, pool workers' heartbeats -- to any number of consumers:

* bounded in-process subscriptions (:class:`Subscription`) and callback
  subscribers (the dashboard, the sweep aggregator);
* a JSONL sink file that ``repro-gap top`` can attach to from another
  terminal;
* a cross-process *forward* hook the sweep runner points at a
  ``multiprocessing`` queue, so pool-worker events stream to the parent
  as they happen instead of arriving with the results.

Sequence numbers are assigned at publish time under the bus lock, so
one process's stream is strictly ordered even when several flow threads
publish concurrently; events ingested from workers are re-sequenced
into the parent stream and keep their origin order in ``source_seq``.

Everything here is off by default and costs one flag check when off --
the same contract as :mod:`repro.obs.instrument`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro.obs.clock import MONOTONIC, ClockFn
from repro.obs.events import Event

#: Default bound on events buffered per subscription.
DEFAULT_SUBSCRIPTION_MAXLEN = 4096

#: Default worker heartbeat interval (seconds).
DEFAULT_HEARTBEAT_S = 1.0


class Subscription:
    """A bounded event buffer fed by the bus.

    Oldest events are dropped once ``maxlen`` is reached -- a slow
    consumer degrades its own view, never the publisher -- and the drop
    count is kept so the consumer knows its view has holes.
    """

    def __init__(self, maxlen: int = DEFAULT_SUBSCRIPTION_MAXLEN) -> None:
        self._events: deque[Event] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.dropped = 0

    def _offer(self, event: Event) -> None:
        with self._lock:
            if (self._events.maxlen is not None
                    and len(self._events) == self._events.maxlen):
                self.dropped += 1
            self._events.append(event)

    def drain(self) -> list[Event]:
        """Return and clear the buffered events, oldest first."""
        with self._lock:
            drained = list(self._events)
            self._events.clear()
        return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class EventBus:
    """Thread-safe pub/sub hub with monotonic sequencing and sinks.

    Args:
        source: stream label stamped on locally published events
            (``"main"`` in the parent, ``"worker-<pid>"`` in workers).
        clock: monotonic time source (swap in a
            :class:`~repro.obs.clock.TickClock` for deterministic
            tests).
    """

    def __init__(self, source: str = "main",
                 clock: ClockFn = MONOTONIC) -> None:
        self.source = source
        self.clock = clock
        self._lock = threading.RLock()
        self._seq = 0
        self._published = 0
        self._by_kind: dict[str, int] = {}
        self._subscriptions: list[Subscription] = []
        self._callbacks: list[Callable[[Event], None]] = []
        self._forward: Callable[[dict], None] | None = None
        self._sink: TextIO | None = None
        self._sink_path: str | None = None

    # -- producer side ----------------------------------------------------

    def publish(self, kind: str, name: str, **attrs: Any) -> Event:
        """Create, sequence, and deliver one event."""
        with self._lock:
            self._seq += 1
            event = Event(
                kind=kind, name=name, seq=self._seq, ts=self.clock(),
                source=self.source, source_seq=self._seq,
                attrs=attrs,
            )
            self._deliver(event)
        return event

    def ingest(self, payload: dict) -> Event | None:
        """Re-sequence and deliver an event from another process.

        The event keeps its origin ``source`` and ``source_seq``;
        ``seq`` is reassigned so the merged stream stays strictly
        monotonic.  Malformed payloads are dropped (returns None).
        """
        try:
            event = Event.from_dict(payload)
        except ValueError:
            return None
        with self._lock:
            self._seq += 1
            event.seq = self._seq
            self._deliver(event)
        return event

    def _deliver(self, event: Event) -> None:
        self._published += 1
        self._by_kind[event.kind] = self._by_kind.get(event.kind, 0) + 1
        for subscription in self._subscriptions:
            subscription._offer(event)
        for callback in self._callbacks:
            try:
                callback(event)
            except Exception:
                # A broken consumer must never take the producer down.
                pass
        if self._forward is not None:
            try:
                self._forward(event.to_dict())
            except Exception:
                self._forward = None
        if self._sink is not None:
            try:
                self._sink.write(event.to_json() + "\n")
                self._sink.flush()
            except OSError:
                self._close_sink()

    # -- consumer side ----------------------------------------------------

    def subscribe(
        self, maxlen: int = DEFAULT_SUBSCRIPTION_MAXLEN
    ) -> Subscription:
        """Register and return a bounded pull-style subscription."""
        subscription = Subscription(maxlen=maxlen)
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    def add_callback(self, callback: Callable[[Event], None]) -> None:
        """Register a push-style consumer (called inline at publish)."""
        with self._lock:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            if callback in self._callbacks:
                self._callbacks.remove(callback)

    def set_forward(self, forward: Callable[[dict], None] | None) -> None:
        """Point the cross-process forward hook at a queue ``put``."""
        with self._lock:
            self._forward = forward

    def attach_jsonl(self, path: str) -> None:
        """Append every subsequent event to ``path`` as one JSON line."""
        with self._lock:
            self._close_sink()
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._sink = open(path, "a")
            self._sink_path = path

    def detach_jsonl(self) -> None:
        with self._lock:
            self._close_sink()

    def _close_sink(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None
        self._sink_path = None

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    def stats(self) -> dict:
        """Publish counts: total, per kind, subscription drops."""
        with self._lock:
            return {
                "published": self._published,
                "by_kind": dict(sorted(self._by_kind.items())),
                "dropped": sum(s.dropped for s in self._subscriptions),
                "subscriptions": len(self._subscriptions),
            }


# ---------------------------------------------------------------------------
# Module-level switch and the hooks into tracer / metrics.

_enabled = False
_bus = EventBus()


def _span_listener(phase: str, span: Any) -> None:
    """Tracer hook: every span open/close becomes a bus event."""
    if phase == "open":
        _bus.publish("span.open", span.name, depth=span.depth,
                     thread=span.thread)
    else:
        attrs: dict = {"duration_ms": span.duration_s * 1e3}
        error = span.attributes.get("error")
        if error is not None:
            attrs["error"] = error
        if span.attributes.get("cached"):
            attrs["cached"] = True
        _bus.publish("span.close", span.name, **attrs)


def _metric_listener(kind: str, name: str, labels: dict,
                     value: float) -> None:
    """Metrics hook: every counter/gauge/histogram move becomes an event."""
    attrs: dict = {"metric": kind, "value": float(value)}
    if labels:
        attrs["labels"] = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
    _bus.publish("metric.delta", name, **attrs)


def enable(jsonl: str | None = None, source: str | None = None,
           clock: ClockFn | None = None, fresh: bool = True) -> EventBus:
    """Turn the live bus on; returns the process bus.

    Args:
        jsonl: optional JSONL sink path (``repro-gap top`` attaches to
            this file).
        source: stream label override (workers pass
            ``"worker-<pid>"``).
        clock: time source override for deterministic tests.
        fresh: start from a new bus (drops subscriptions and counters).
    """
    global _enabled, _bus
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    if fresh:
        _bus.detach_jsonl()
        _bus = EventBus(
            source=source or _bus.source,
            clock=clock or MONOTONIC,
        )
    else:
        if source is not None:
            _bus.source = source
        if clock is not None:
            _bus.clock = clock
    if jsonl is not None:
        _bus.attach_jsonl(jsonl)
    if fresh:
        _aggregate.reset()
    _bus.remove_callback(_aggregate)
    _bus.add_callback(_aggregate)
    _trace.set_span_listener(_span_listener)
    _metrics.set_metric_listener(_metric_listener)
    _enabled = True
    return _bus


def disable() -> None:
    """Turn the live bus off and unhook the tracer/metrics listeners."""
    global _enabled
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    _trace.set_span_listener(None)
    _metrics.set_metric_listener(None)
    _bus.detach_jsonl()
    _bus.set_forward(None)
    _enabled = False


def enabled() -> bool:
    """Whether :func:`emit` publishes anything."""
    return _enabled


def get_bus() -> EventBus:
    """The process-global bus (valid whether or not it is enabled)."""
    return _bus


def emit(kind: str, name: str, **attrs: Any) -> None:
    """Publish an event, or do nothing when the bus is off."""
    if _enabled:
        _bus.publish(kind, name, **attrs)


def sink_path() -> str | None:
    """The active JSONL sink path, if a sink is attached."""
    return _bus.sink_path if _enabled else None


# ---------------------------------------------------------------------------
# Watch configuration: heartbeats and stall detection defaults.

@dataclass
class WatchConfig:
    """Heartbeat/stall policy the sweep runner reads its defaults from.

    Attributes:
        heartbeat_s: worker heartbeat interval; None disables the
            beacon thread.
        stall_timeout_s: how long a busy worker may stay silent before
            the stall detector fires; None disables detection.
    """

    heartbeat_s: float | None = DEFAULT_HEARTBEAT_S
    stall_timeout_s: float | None = None


_watch = WatchConfig()


def configure_watch(heartbeat_s: float | None = DEFAULT_HEARTBEAT_S,
                    stall_timeout_s: float | None = None) -> None:
    """Set the process-wide heartbeat/stall defaults."""
    global _watch
    _watch = WatchConfig(heartbeat_s=heartbeat_s,
                         stall_timeout_s=stall_timeout_s)


def watch_config() -> WatchConfig:
    return _watch


# ---------------------------------------------------------------------------
# Worker-side heartbeat beacon.

class Heartbeat:
    """Background thread publishing periodic liveness events.

    Runs inside pool workers: even while the worker's main thread is
    deep in a solver, the beacon keeps publishing ``heartbeat`` events
    carrying which task is being worked and for how long -- the signal
    the parent's stall detector distinguishes "busy" from "wedged" with.
    """

    def __init__(self, bus: EventBus, interval_s: float) -> None:
        self.bus = bus
        self.interval_s = max(float(interval_s), 0.01)
        self._task: Any = None
        self._task_started: float | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def set_task(self, task: Any) -> None:
        """Record the task label the beacon reports (None = idle)."""
        with self._lock:
            self._task = task
            self._task_started = (time.monotonic()
                                  if task is not None else None)

    def _beat(self) -> None:
        with self._lock:
            task, started = self._task, self._task_started
        attrs: dict = {}
        if task is not None:
            attrs["task"] = str(task)
        if started is not None:
            attrs["busy_s"] = time.monotonic() - started
        self.bus.publish("heartbeat", self.bus.source, **attrs)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._beat()

    def start(self) -> "Heartbeat":
        self._thread = threading.Thread(
            target=self._run, name="obs-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)


# ---------------------------------------------------------------------------
# Parent-side stall detection.

@dataclass(frozen=True)
class StallReport:
    """One stalled worker, as the detector saw it.

    Attributes:
        source: the silent stream (``"worker-<pid>"``).
        silent_s: seconds since the stream's last event arrived.
        task: last task label the stream reported, if any.
        last_kind: kind of the last event seen from the stream.
    """

    source: str
    silent_s: float
    task: str = ""
    last_kind: str = ""

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "silent_s": round(self.silent_s, 3),
            "task": self.task,
            "last_kind": self.last_kind,
        }

    def describe(self) -> str:
        task = f" (task {self.task})" if self.task else ""
        return (f"worker {self.source} silent for "
                f"{self.silent_s:.2f} s{task}; last event "
                f"{self.last_kind or '?'}")


class StallDetector:
    """Tracks per-source last-event times and flags silent workers.

    The sweep runner feeds it every ingested worker event
    (:meth:`note`) and polls :meth:`check` between queue drains; a
    source that reported a task start (or a heartbeat) and then went
    silent past the timeout is reported as stalled.  Detection is
    arrival-time based -- worker clocks never enter into it.
    """

    def __init__(self, timeout_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if timeout_s <= 0:
            raise ValueError("stall timeout must be positive")
        self.timeout_s = float(timeout_s)
        self.clock = clock
        self._last_seen: dict[str, float] = {}
        self._last_kind: dict[str, str] = {}
        self._task: dict[str, str] = {}
        self._busy: dict[str, bool] = {}

    def note(self, event: Event) -> None:
        """Record one ingested event's arrival."""
        source = event.source
        self._last_seen[source] = self.clock()
        self._last_kind[source] = event.kind
        if event.kind == "task.start":
            self._busy[source] = True
            self._task[source] = str(event.attrs.get("index", ""))
        elif event.kind == "task.done":
            self._busy[source] = False
            self._task.pop(source, None)
        elif event.kind == "heartbeat" and "task" in event.attrs:
            self._task[source] = str(event.attrs["task"])

    def forget(self, source: str) -> None:
        """Drop a source from tracking (e.g. a worker the sweep
        supervisor killed and replaced -- its silence is expected)."""
        self._last_seen.pop(source, None)
        self._last_kind.pop(source, None)
        self._task.pop(source, None)
        self._busy.pop(source, None)

    def check(self) -> list[StallReport]:
        """Busy sources silent past the timeout, worst first."""
        now = self.clock()
        stalled = [
            StallReport(
                source=source,
                silent_s=now - seen,
                task=self._task.get(source, ""),
                last_kind=self._last_kind.get(source, ""),
            )
            for source, seen in self._last_seen.items()
            if self._busy.get(source) and now - seen > self.timeout_s
        ]
        stalled.sort(key=lambda r: r.silent_s, reverse=True)
        return stalled


# ---------------------------------------------------------------------------
# Incremental sweep aggregates.

class SweepAggregate:
    """Running min/median/max over per-task metrics, updated live.

    Subscribes to the bus and folds every ``task.done`` event's
    ``m.<key>`` attributes into per-key series; :meth:`snapshot`
    reports count/min/median/max/mean without waiting for the sweep to
    drain.  Exact medians are kept (task counts are thousands, not
    millions).
    """

    METRIC_PREFIX = "m."

    def __init__(self) -> None:
        self._values: dict[str, list[float]] = {}
        self._done = 0
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        if event.kind != "task.done":
            return
        with self._lock:
            self._done += 1
            for key, value in event.attrs.items():
                if not key.startswith(self.METRIC_PREFIX):
                    continue
                if not isinstance(value, (int, float)):
                    continue
                name = key[len(self.METRIC_PREFIX):]
                self._values.setdefault(name, []).append(float(value))

    @property
    def done(self) -> int:
        with self._lock:
            return self._done

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-key running stats: count, min, median, max, mean."""
        with self._lock:
            series = {k: list(v) for k, v in self._values.items()}
        out: dict[str, dict[str, float]] = {}
        for key in sorted(series):
            values = sorted(series[key])
            count = len(values)
            mid = count // 2
            median = (values[mid] if count % 2
                      else 0.5 * (values[mid - 1] + values[mid]))
            out[key] = {
                "count": count,
                "min": values[0],
                "median": median,
                "max": values[-1],
                "mean": sum(values) / count,
            }
        return out

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._done = 0


_aggregate = SweepAggregate()


def get_aggregate() -> SweepAggregate:
    """The process-global sweep aggregator (attached while enabled)."""
    return _aggregate


# ---------------------------------------------------------------------------
# Terminal dashboard.

@dataclass
class _Lane:
    """Dashboard state of one event stream (worker or main)."""

    last_kind: str = ""
    last_name: str = ""
    last_seen: float = 0.0
    task: str = ""
    busy_s: float = 0.0
    done: int = 0


@dataclass
class _FlowProgress:
    """Dashboard state of one in-flight flow run."""

    total: int = 0
    done: int = 0
    current: str = ""
    cached: int = 0
    statuses: dict = field(default_factory=dict)


@dataclass
class _SweepProgress:
    """Dashboard state of one sweep label's task progress.

    Driven by ``sweep.progress`` roll-ups alone (not raw ``task.done``
    counts): sweeps nest -- a pool sweep's flow points each run their
    own inner serial sweeps -- and only the roll-up knows which sweep a
    completion belongs to and what its current total is.
    """

    done: int = 0
    total: int = 0
    eta_s: float | None = None


class Dashboard:
    """Renders a live terminal view of an event stream.

    Consumes bus events (as a callback, or fed from a JSONL file by
    ``repro-gap top``) and maintains: per-flow stage progress bars,
    stage-cache hit rate, per-worker lanes, sweep progress with ETA,
    and the most recent stall diagnostics.  On a TTY the frame is
    redrawn in place with ANSI cursor movement; on anything else
    (``--live`` redirected to a file) compact progress lines are
    appended instead, one per refresh, so the output stays a readable
    log.
    """

    BAR_WIDTH = 24

    def __init__(self, stream: TextIO | None = None,
                 refresh_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        self.clock = clock
        self._lock = threading.Lock()
        self._lanes: dict[str, _Lane] = {}
        self._flows: dict[str, _FlowProgress] = {}
        self._sweeps: dict[str, _SweepProgress] = {}
        self._events = 0
        self._cache_hits = 0
        self._stage_runs = 0
        self._retries = 0
        self._quarantined = 0
        self._replays = 0
        self._workers_lost = 0
        self._stalls: deque[str] = deque(maxlen=4)
        self._started = clock()
        self._last_paint = 0.0
        self._frame_lines = 0
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    # -- state folding -----------------------------------------------------

    def __call__(self, event: Event) -> None:
        self.feed(event)

    def feed(self, event: Event, paint: bool = True) -> None:
        """Fold one event into the view (and maybe repaint)."""
        with self._lock:
            self._events += 1
            lane = self._lanes.setdefault(event.source, _Lane())
            lane.last_kind = event.kind
            lane.last_name = event.name
            lane.last_seen = self.clock()
            attrs = event.attrs
            if event.kind == "stage.start":
                flow = str(attrs.get("flow", event.name))
                progress = self._flows.setdefault(flow, _FlowProgress())
                progress.total = max(progress.total,
                                     int(attrs.get("total", 0)))
                progress.current = str(attrs.get("stage", ""))
                self._stage_runs += 1
            elif event.kind == "stage.done":
                flow = str(attrs.get("flow", event.name))
                progress = self._flows.setdefault(flow, _FlowProgress())
                stage = str(attrs.get("stage", ""))
                progress.statuses[stage] = str(attrs.get("status", "ok"))
                progress.done += 1
                progress.total = max(progress.total, progress.done)
                if progress.current == stage:
                    progress.current = ""
                if attrs.get("cache_hit"):
                    progress.cached += 1
            elif event.kind == "stage.cache":
                # The global hit counter keys off the cache event alone;
                # the matching stage.done(cache_hit) only marks the flow.
                self._cache_hits += 1
            elif event.kind == "heartbeat":
                lane.task = str(attrs.get("task", lane.task))
                lane.busy_s = float(attrs.get("busy_s", 0.0))
            elif event.kind == "task.start":
                lane.task = str(attrs.get("index", ""))
            elif event.kind == "task.done":
                lane.task = ""
                lane.busy_s = 0.0
                lane.done += 1
            elif event.kind == "sweep.progress":
                sweep = self._sweeps.setdefault(event.name,
                                                _SweepProgress())
                sweep.done = int(attrs.get("done", sweep.done))
                sweep.total = int(attrs.get("total", sweep.total))
                eta = attrs.get("eta_s")
                sweep.eta_s = float(eta) if eta is not None else None
            elif event.kind == "stall":
                self._stalls.append(str(attrs.get("detail", event.name)))
            elif event.kind == "task.retry":
                self._retries += 1
            elif event.kind == "task.quarantine":
                self._quarantined += 1
            elif event.kind == "task.replay":
                self._replays += 1
            elif event.kind == "worker.lost":
                self._workers_lost += 1
        if paint:
            self.maybe_paint()

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _bar(done: int, total: int, width: int) -> str:
        if total <= 0:
            return "-" * width
        filled = int(round(width * min(done, total) / total))
        return "#" * filled + "." * (width - filled)

    def render(self) -> str:
        """The current frame as text (no painting)."""
        with self._lock:
            elapsed = self.clock() - self._started
            lines = [
                f"live telemetry  events={self._events}  "
                f"elapsed={elapsed:6.1f} s"
            ]
            for flow in sorted(self._flows):
                p = self._flows[flow]
                bar = self._bar(p.done, p.total, self.BAR_WIDTH)
                current = f"  @{p.current}" if p.current else ""
                cached = f"  {p.cached} cached" if p.cached else ""
                lines.append(
                    f"  flow {flow:<10.10s} |{bar}| "
                    f"{p.done}/{p.total or '?'}{current}{cached}"
                )
            for name in sorted(self._sweeps):
                sweep = self._sweeps[name]
                bar = self._bar(sweep.done, sweep.total, self.BAR_WIDTH)
                eta = (f"  eta {sweep.eta_s:6.1f} s"
                       if sweep.eta_s is not None else "")
                # Sweep labels are dotted paths; the tail is the
                # distinctive part ("...montecarlo.sweep").
                label = name if len(name) <= 14 else "…" + name[-13:]
                lines.append(
                    f"  sweep {label:<14.14s} |{bar}| "
                    f"{sweep.done}/{sweep.total or '?'}{eta}"
                )
            if self._stage_runs or self._cache_hits:
                total = self._stage_runs
                rate = (self._cache_hits / total) if total else 0.0
                lines.append(
                    f"  stage cache: {self._cache_hits} hits"
                    f" / {total} stages ({rate:.0%})"
                )
            workers = [s for s in sorted(self._lanes)
                       if s.startswith("worker")]
            for source in workers:
                lane = self._lanes[source]
                task = f" task {lane.task}" if lane.task else " idle"
                busy = (f" busy {lane.busy_s:5.1f} s"
                        if lane.busy_s else "")
                lines.append(
                    f"  {source:<14.14s} done={lane.done:<4d}"
                    f"{task}{busy}  [{lane.last_kind}]"
                )
            if (self._retries or self._quarantined or self._replays
                    or self._workers_lost):
                lines.append(
                    f"  recovery: {self._retries} retries, "
                    f"{self._quarantined} quarantined, "
                    f"{self._replays} replayed, "
                    f"{self._workers_lost} workers lost"
                )
            for stall in self._stalls:
                lines.append(f"  STALL: {stall}")
            return "\n".join(lines)

    def maybe_paint(self) -> None:
        now = self.clock()
        if now - self._last_paint < self.refresh_s:
            return
        self.paint()

    def paint(self) -> None:
        """Write one frame: in-place on a TTY, appended otherwise."""
        frame = self.render()
        self._last_paint = self.clock()
        try:
            if self._isatty:
                if self._frame_lines:
                    self.stream.write(f"\x1b[{self._frame_lines}F\x1b[J")
                self.stream.write(frame + "\n")
                self._frame_lines = frame.count("\n") + 1
            else:
                # Log mode: one compact line per refresh.
                summary = frame.splitlines()[0]
                done = sum(s.done for s in self._sweeps.values())
                total = sum(s.total for s in self._sweeps.values())
                if total:
                    summary += f"  tasks {done}/{total}"
                self.stream.write(summary + "\n")
            self.stream.flush()
        except OSError:
            pass

    def final(self) -> str:
        """Full closing frame (always the multi-line view)."""
        return self.render()
