"""Array timing engine: exact equivalence with the object engine.

The contract under test is *bitwise* agreement: the vectorized engine
(:mod:`repro.sta.array`) preserves the object engine's floating-point
expression shapes, so every arrival, slew, trace and minimum period it
produces must equal ``analyze()``'s output exactly -- ``check=True``
modes assert that on every call, and these tests drive them across
libraries, workloads, derates, parasitics and NLDM tables.  The batched
Monte Carlo path must reproduce the sequential sampler's population
bit-for-bit from the same seed.  Also pinned here: the PR 8 bugfix
regressions (multi-output instance loads, memoization of keyword calls,
NaN-keyed cache entries).
"""

import dataclasses
import math
import random

import numpy as np
import pytest

from repro.cells import (
    LinearDelayArc,
    NLDMArc,
    custom_library,
    poor_asic_library,
    rich_asic_library,
)
from repro.datapath import kogge_stone_adder, ripple_carry_adder
from repro.netlist import Module
from repro.par import memo
from repro.par.session import ArrayTimingSession, TimingSession
from repro.robust.faults import FaultInjector
from repro.sta import (
    ArrayCheckError,
    TimingError,
    WireParasitics,
    analyze,
    analyze_array,
    asic_clock,
    batch_analyze,
    custom_clock,
    monte_carlo_min_period,
    register_boundaries,
    solve_min_period,
)
from repro.sta.array import assert_reports_match, clock_analyzer
from repro.sta.statistical import _gate_delay_stats
from repro.sta.timing_graph import TimingGraph
from repro.synth import map_design, parse_expression
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM
from repro.tech.corners import evaluate_corners

CLK = asic_clock(10000.0)


def mapped(text, library, drive=1.0):
    return map_design({"y": parse_expression(text)}, library,
                      default_drive=drive)


def nldm_library():
    """Rich library with every combinational arc converted to a table."""
    lib = rich_asic_library(CMOS250_ASIC)
    for cell in lib:
        if cell.is_sequential:
            continue
        for pin, arc in list(cell.arcs.items()):
            if isinstance(arc, LinearDelayArc):
                cell.arcs[pin] = NLDMArc.from_linear(arc, max_load_ff=200.0)
    return lib


def multi_output_module():
    """An instance driving two output nets with very different loads."""
    m = Module("multi_out")
    m.add_input("a")
    m.add_input("b")
    m.add_instance("g0", "NAND2_X2", inputs={"A": "a", "B": "b"},
                   outputs={"Y": "y1", "Z": "y2"})
    m.add_instance("s1", "INV_X1", inputs={"A": "y1"}, outputs={"Y": "o1"})
    m.add_instance("s2", "INV_X4", inputs={"A": "y2"}, outputs={"Y": "o2"})
    m.add_output("o1")
    m.add_output("o2")
    return m


def assert_exact(array_report, object_report):
    assert_reports_match(array_report, object_report)
    assert array_report.min_period_ps == object_report.min_period_ps


class TestArrayEquivalence:
    @pytest.mark.parametrize("library", [
        rich_asic_library(CMOS250_ASIC),
        poor_asic_library(CMOS250_ASIC),
        custom_library(CMOS250_CUSTOM),
    ], ids=["rich", "poor", "custom"])
    @pytest.mark.parametrize("builder", [
        lambda lib: register_boundaries(ripple_carry_adder(4, lib), lib),
        lambda lib: register_boundaries(kogge_stone_adder(8, lib), lib),
        lambda lib: mapped("(a & b) | (~c & d)", lib),
    ], ids=["ripple4", "kogge8", "mapped"])
    def test_matches_object_engine(self, library, builder):
        module = builder(library)
        obj = analyze(module, library, CLK)
        arr = analyze_array(module, library, CLK, check=True)
        assert_exact(arr, obj)

    @pytest.mark.parametrize("derate", [1.0, 1.65, 1.0 / 1.30])
    def test_derates_and_parasitics(self, derate):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        wire = WireParasitics(
            extra_cap_ff={"s0": 25.0}, extra_delay_ps={"s1": 140.0}
        )
        obj = analyze(module, lib, CLK, wire=wire, delay_derate=derate,
                      input_arrival_ps=150.0)
        arr = analyze_array(module, lib, CLK, wire=wire,
                            delay_derate=derate, input_arrival_ps=150.0,
                            check=True)
        assert_exact(arr, obj)

    def test_nldm_tables(self):
        lib = nldm_library()
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        obj = analyze(module, lib, CLK)
        arr = analyze_array(module, lib, CLK, check=True)
        assert_exact(arr, obj)

    def test_multi_output_instances(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = multi_output_module()
        obj = analyze(module, lib, CLK)
        arr = analyze_array(module, lib, CLK, check=True)
        assert_exact(arr, obj)

    def test_clock_analyzer_reuses_propagation(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(8, lib), lib)
        run = clock_analyzer(module, lib)
        for period in (500.0, 2000.0, 12000.0):
            clk = asic_clock(period)
            assert_exact(run(clk), analyze(module, lib, clk))

    def test_solve_min_period_array_matches_object(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        fast = solve_min_period(module, lib, CLK, use_array=True)
        slow = solve_min_period(module, lib, CLK, use_array=False)
        assert fast.min_period_ps == slow.min_period_ps
        check = solve_min_period(module, lib, CLK, check_array=True)
        assert check.min_period_ps == fast.min_period_ps

    def test_undriven_logic_raises_engine_error(self):
        lib = rich_asic_library(CMOS250_ASIC)
        m = Module("undriven")
        m.add_instance("g", "INV_X1", inputs={"A": "floating"},
                       outputs={"Y": "y"})
        m.add_output("y")
        with pytest.raises(TimingError, match="no arrival"):
            analyze_array(m, lib, CLK)

    def test_poisoned_arc_falls_back_to_object_engine(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        FaultInjector(3).inject_nan(lib, module)
        with pytest.raises(TimingError):
            analyze(module, lib, CLK)
        with pytest.raises(TimingError):
            analyze_array(module, lib, CLK)


class TestBatchedAnalysis:
    def test_batch_analyze_matches_per_derate(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        derates = [1.65, 1.30, 1.0, 1.0 / 1.15, 1.0 / 1.30]
        reports = batch_analyze(module, lib, CLK, derates)
        for derate, rep in zip(derates, reports):
            assert_exact(rep, analyze(module, lib, CLK,
                                      delay_derate=derate))

    def test_evaluate_corners_array_equals_object(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(8, lib), lib)
        fast = evaluate_corners(module, lib, CLK)
        slow = evaluate_corners(module, lib, CLK, use_array=False)
        assert set(fast) == set(slow)
        for corner in fast:
            assert fast[corner].min_period_ps == slow[corner].min_period_ps


class TestBatchedMonteCarlo:
    @pytest.mark.parametrize("seed,sigma", [(1, 0.05), (9, 0.12)])
    def test_bitwise_equal_to_sequential(self, seed, sigma):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        wire = WireParasitics(extra_delay_ps={"s2": 90.0})
        batched = monte_carlo_min_period(
            module, lib, CLK, sigma_fraction=sigma, samples=333,
            seed=seed, wire=wire,
        )
        sequential = monte_carlo_min_period(
            module, lib, CLK, sigma_fraction=sigma, samples=333,
            seed=seed, wire=wire, batched=False,
        )
        assert np.array_equal(batched, sequential)

    def test_zero_sigma_is_deterministic(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        periods = monte_carlo_min_period(
            module, lib, CLK, sigma_fraction=0.0, samples=5, seed=2
        )
        assert len(set(periods.tolist())) == 1

    def test_multi_output_module_matches_sequential(self):
        # Regression: _gate_delay_stats used to take only the first
        # output net's load, diverging from the deterministic engine.
        lib = rich_asic_library(CMOS250_ASIC)
        module = multi_output_module()
        batched = monte_carlo_min_period(
            module, lib, CLK, samples=64, seed=5
        )
        sequential = monte_carlo_min_period(
            module, lib, CLK, samples=64, seed=5, batched=False
        )
        assert np.array_equal(batched, sequential)


class TestArraySession:
    def test_randomized_swap_sequence_matches_object_session(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(8, lib), lib)
        obj = TimingSession(module.clone(), lib, CLK)
        arr = ArrayTimingSession(module.clone(), lib, CLK, check=True)
        assert obj.min_period_ps() == arr.min_period_ps()
        rng = random.Random(42)
        comb = [
            name for name in module.instances
            if not lib.get(module.instance(name).cell_name).is_sequential
        ]
        drives = ["X1", "X2", "X4"]
        for _ in range(15):
            name = rng.choice(comb)
            base = lib.get(obj.module.instance(name).cell_name).base_name
            candidates = [
                c.name for c in lib.drives_of(base)
            ]
            target = rng.choice(candidates)
            assert obj.trial(name, target) == arr.trial(name, target)
            if rng.random() < 0.5:
                ro = obj.commit(name, target)
                ra = arr.commit(name, target)
                assert ro.min_period_ps == ra.min_period_ps
        assert_reports_match(arr.report(), obj.report())

    def test_sequential_swap_rejected(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        session = ArrayTimingSession(module, lib, CLK)
        seq = next(
            name for name in module.instances
            if lib.get(module.instance(name).cell_name).is_sequential
        )
        with pytest.raises(TimingError, match="sequential"):
            session.trial(seq, "INV_X1")

    def test_poisoned_design_degrades_to_object_session(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        FaultInjector(3).inject_nan(lib, module)
        with pytest.raises(TimingError):
            ArrayTimingSession(module, lib, CLK)


class TestFlowParity:
    def test_asic_flow_identical_with_and_without_array(self):
        from repro.flows import AsicFlowOptions, run_asic_flow

        fast = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4))
        slow = run_asic_flow(
            AsicFlowOptions(bits=4, sizing_moves=4, use_array=False)
        )
        assert fast.min_period_ps == slow.min_period_ps
        assert fast.typical_frequency_mhz == slow.typical_frequency_mhz
        assert fast.area_um2 == slow.area_um2

    def test_flow_check_array_passes(self):
        from repro.flows import AsicFlowOptions, run_asic_flow

        checked = run_asic_flow(
            AsicFlowOptions(bits=4, sizing_moves=4, check_array=True)
        )
        plain = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4))
        assert checked.min_period_ps == plain.min_period_ps

    def test_fingerprint_ignores_array_policy(self):
        from repro.flows import AsicFlowOptions
        from repro.flows.options import options_fingerprint

        assert options_fingerprint(AsicFlowOptions()) == \
            options_fingerprint(
                AsicFlowOptions(use_array=False, check_array=True)
            )


class TestCheckMode:
    def test_tampered_report_trips_check(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        report = analyze(module, lib, CLK)
        tampered = dataclasses.replace(
            report, min_period_ps=report.min_period_ps + 1.0
        )
        with pytest.raises(ArrayCheckError):
            assert_reports_match(tampered, report)

    def test_sub_tolerance_drift_is_accepted(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(ripple_carry_adder(4, lib), lib)
        report = analyze(module, lib, CLK)
        nudged = dataclasses.replace(
            report, min_period_ps=report.min_period_ps + 1e-10
        )
        assert_reports_match(nudged, report)


class TestBugfixRegressions:
    def test_instance_load_sums_all_output_nets(self):
        lib = rich_asic_library(CMOS250_ASIC)
        module = multi_output_module()
        graph = TimingGraph(module, lib)
        assert graph.instance_load_ff("g0") == (
            graph.net_load_ff("y1") + graph.net_load_ff("y2")
        )

    def test_gate_delay_stats_uses_summed_load(self):
        # Was: only the first output net's load, so the statistical
        # model disagreed with the deterministic engine on fanout-split
        # instances.
        lib = rich_asic_library(CMOS250_ASIC)
        module = multi_output_module()
        graph = TimingGraph(module, lib)
        stats = _gate_delay_stats(graph, module, 0.05)
        load = graph.instance_load_ff("g0")
        cell = graph.cell_of("g0")
        for pin in ("A", "B"):
            assert stats[("g0", pin)][0] == cell.delay_ps(pin, load, 20.0)

    def test_memoized_accepts_keyword_arguments(self):
        # Was: the wrapper took *args only, so keyword calls raised
        # TypeError through the decorator.
        memo.reset()
        calls = []

        @memo.memoized("sizing.le")
        def f(x, y=1):
            calls.append((x, y))
            return x + y

        assert f(1, y=2) == 3
        assert f(1, y=2) == 3
        assert len(calls) == 2  # kwargs fall through, counted as misses
        assert memo.stats()["sizing.le"]["misses"] >= 2
        assert f(1, 2) == 3
        assert f(1, 2) == 3
        assert len(calls) == 3  # positional spelling still caches
        memo.reset()

    def test_arc_eval_skips_non_finite_keys(self):
        # Was: NaN-keyed entries were inserted but can never hit
        # (NaN != NaN), growing the cache until the bound wiped it.
        memo.reset()
        arc = LinearDelayArc(parasitic_ps=10.0, effort_ps_per_ff=2.0)
        memo.arc_eval(arc, 4.0, 20.0)
        assert memo.stats()["sta.arc"]["size"] == 1
        for _ in range(5):
            delay, _slew = memo.arc_eval(arc, float("nan"), 20.0)
            assert math.isnan(delay)
            memo.arc_eval(arc, 4.0, float("inf"))
        assert memo.stats()["sta.arc"]["size"] == 1
        memo.reset()
